//! Segment-level TCP, Reno/NewReno flavour, as used by DCLUE.
//!
//! The paper configures OPNET's TCP as "Reno, SACK enabled, ECN enabled,
//! timer values reduced by 100x for the data center". We implement:
//!
//! * three-way handshake with SYN retransmission,
//! * slow start / congestion avoidance (byte-counted cwnd),
//! * fast retransmit on 3 dup-ACKs and NewReno partial-ACK recovery
//!   (hole-by-hole retransmission, which is the behavioural effect of
//!   SACK for the message sizes in this study),
//! * Jacobson/Karn RTT estimation with exponential RTO backoff,
//! * delayed ACKs (every 2nd segment or a timer),
//! * ECN: CE-marked packets echo ECE until the sender responds with CWR,
//!   halving cwnd at most once per round trip,
//! * connection reset after a configurable number of retransmissions
//!   (the paper bumps this very high for IPC connections),
//! * graceful FIN close.
//!
//! Payload bytes are never materialised; the connection carries *framed
//! messages* — `(MsgId, length)` pairs — and the receiver reports a
//! message as delivered when its last byte is acknowledged in order.
//! This is how IPC control/data messages, iSCSI PDUs and client/server
//! requests all ride the same stream.
//!
//! The module is pure: every entry point appends outgoing segments, timer
//! requests and app notes to a [`TcpOut`] provided by the caller.

use crate::types::{ConnId, MsgId, Side};
use dclue_sim::{Duration, SimTime};
use std::collections::VecDeque;

/// TCP header flags (only the ones the model uses).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Flags(pub u8);

impl Flags {
    pub const SYN: Flags = Flags(0b0001);
    pub const ACK: Flags = Flags(0b0010);
    pub const FIN: Flags = Flags(0b0100);
    pub const RST: Flags = Flags(0b1000);

    #[inline]
    pub fn has(self, f: Flags) -> bool {
        self.0 & f.0 != 0
    }

    #[inline]
    pub fn with(self, f: Flags) -> Flags {
        Flags(self.0 | f.0)
    }
}

/// SACK blocks carried in a segment: up to 3 out-of-order `[start, end)`
/// ranges, RFC 2018 style (the option field fits 3 blocks alongside
/// timestamps). Stored inline so a [`Segment`] is `Copy`-cheap to clone
/// as it moves hop-by-hop through queues — no per-packet allocation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SackList {
    len: u8,
    blocks: [(u64, u64); 3],
}

impl SackList {
    pub const EMPTY: SackList = SackList {
        len: 0,
        blocks: [(0, 0); 3],
    };

    /// Append a block; silently ignored once full (RFC 2018 senders
    /// simply omit blocks that don't fit).
    #[inline]
    pub fn push(&mut self, block: (u64, u64)) {
        if (self.len as usize) < self.blocks.len() {
            self.blocks[self.len as usize] = block;
            self.len += 1;
        }
    }

    #[inline]
    pub fn as_slice(&self) -> &[(u64, u64)] {
        &self.blocks[..self.len as usize]
    }

    #[inline]
    pub fn iter(&self) -> std::slice::Iter<'_, (u64, u64)> {
        self.as_slice().iter()
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// One TCP segment. Sequence numbers are abstract u64 (no wraparound).
#[derive(Clone, Debug)]
pub struct Segment {
    pub conn: ConnId,
    /// Which endpoint sent this segment.
    pub from: Side,
    pub seq: u64,
    pub ack: u64,
    /// Payload length in bytes (0 for pure ACKs; SYN/FIN occupy one
    /// sequence number but carry `len == 0`).
    pub len: u64,
    pub flags: Flags,
    /// ECN-echo: receiver saw a CE mark.
    pub ece: bool,
    /// Congestion-window-reduced: sender response to ECE.
    pub cwr: bool,
    /// SACK blocks held by the receiver (most recent first).
    pub sack: SackList,
}

/// Timer kinds a connection can request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TimerKind {
    /// Retransmission timeout for `side`.
    Rtx(Side),
    /// Delayed-ACK timer for `side`.
    DelAck(Side),
    /// Connection-establishment (SYN) retransmission timer.
    Conn,
}

/// A timer request: arm `kind` (with generation `gen`) after `delay`.
#[derive(Clone, Copy, Debug)]
pub struct TimerReq {
    pub kind: TimerKind,
    pub gen: u64,
    pub delay: Duration,
}

/// App-level notes produced by the connection state machine.
#[derive(Debug, PartialEq)]
pub enum TcpAppNote {
    Established,
    /// `msg` fully arrived in order at `side`.
    MessageDelivered {
        side: Side,
        msg: MsgId,
        bytes: u64,
        sent_at: SimTime,
    },
    Reset,
    Closed,
}

/// Output sink for one TCP entry point invocation.
#[derive(Debug, Default)]
pub struct TcpOut {
    pub segs: Vec<Segment>,
    pub timers: Vec<TimerReq>,
    /// Timers whose pending arm is now known to be superseded (the
    /// generation was bumped with nothing re-armed). The owner may
    /// cancel the scheduled event instead of letting it fire dead.
    pub cancels: Vec<TimerKind>,
    pub notes: Vec<TcpAppNote>,
}

impl TcpOut {
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop all contents, keeping the allocations for reuse.
    pub fn clear(&mut self) {
        self.segs.clear();
        self.timers.clear();
        self.cancels.clear();
        self.notes.clear();
    }
}

/// Connection tuning parameters.
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// Maximum segment size in bytes.
    pub mss: u64,
    /// Peer receive window (fixed; apps drain instantly in the model).
    pub rwnd: u64,
    /// Initial congestion window in segments.
    pub init_cwnd_segs: u64,
    /// Initial slow-start threshold in bytes.
    pub init_ssthresh: u64,
    /// Minimum retransmission timeout.
    pub min_rto: Duration,
    /// Maximum retransmission timeout.
    pub max_rto: Duration,
    /// Delayed-ACK timer.
    pub delack: Duration,
    /// Abort the connection after this many consecutive retransmissions
    /// of the same data. The paper sets this very high for IPC
    /// connections to avoid resets under stress.
    pub max_retrans: u32,
    /// Maximum SYN retransmissions before giving up.
    pub max_syn_retrans: u32,
    /// ECN enabled for this connection.
    pub ecn: bool,
    /// Selective acknowledgements (RFC 2018): the sender repairs exact
    /// holes instead of NewReno's one-hole-per-RTT. The paper runs with
    /// SACK enabled.
    pub sack: bool,
    /// Segment-train mode: steady-state bulk segments may arrive batched
    /// (`on_segments` with `train > 1`), so congestion-avoidance growth
    /// is byte-counted per acked byte (RFC 3465 style) to match the
    /// effective per-2-segments growth of segment-exact mode regardless
    /// of how many segments each ACK covers.
    pub train: bool,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1460,
            rwnd: 64 * 1024,
            init_cwnd_segs: 2,
            init_ssthresh: 64 * 1024,
            // Standard values / 100, per the paper's data-center scaling.
            // (The cluster config multiplies them back up by the global
            // scale factor.)
            min_rto: Duration::from_millis(2),
            max_rto: Duration::from_secs(1),
            delack: Duration::from_micros(400),
            max_retrans: 8,
            max_syn_retrans: 5,
            ecn: true,
            sack: true,
            train: false,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ConnState {
    /// Opener: SYN sent, waiting for SYN-ACK. Acceptor: nothing yet.
    Opening,
    Established,
    /// FIN sent locally (may still receive).
    Closing,
    /// Fully closed or aborted.
    Dead,
}

/// A framed message in the send stream: delivered when `end_seq` is
/// acknowledged contiguously at the receiver.
#[derive(Clone, Copy, Debug)]
struct Frame {
    msg: MsgId,
    end_seq: u64,
    len: u64,
    sent_at: SimTime,
}

/// Per-endpoint state (each connection has two).
#[derive(Debug)]
struct Endpoint {
    state: ConnState,
    // ---- send side ----
    snd_una: u64,
    snd_nxt: u64,
    /// End of application data queued for sending (stream offset).
    snd_end: u64,
    cwnd: f64,
    ssthresh: f64,
    dup_acks: u32,
    in_recovery: bool,
    /// NewReno: snd_nxt at loss detection; recovery ends when acked past.
    recover: u64,
    srtt: Option<f64>,
    rttvar: f64,
    rto: Duration,
    rtx_gen: u64,
    rtx_armed: bool,
    retrans_count: u32,
    /// Outstanding RTT probe: (sequence that must be acked, send time).
    rtt_probe: Option<(u64, SimTime)>,
    /// Framing of messages this endpoint is sending.
    frames: VecDeque<Frame>,
    /// FIN: sequence number the FIN occupies once data is flushed.
    fin_queued: bool,
    fin_seq: Option<u64>,
    fin_acked: bool,
    // ---- receive side ----
    rcv_nxt: u64,
    /// Out-of-order received intervals `[start, end)`, disjoint, sorted.
    ooo: Vec<(u64, u64)>,
    /// Sender-side SACK scoreboard: peer-held intervals above snd_una.
    sacked: Vec<(u64, u64)>,
    delack_count: u32,
    delack_gen: u64,
    delack_armed: bool,
    peer_fin: Option<u64>,
    // ---- ECN ----
    /// Must echo ECE in outgoing ACKs until peer sends CWR.
    ece_pending: bool,
    /// Ignore further ECE until snd_una passes this point (once per RTT).
    ecn_recover: u64,
    /// Send CWR on the next data segment.
    cwr_pending: bool,
}

impl Endpoint {
    fn new(cfg: &TcpConfig) -> Self {
        Endpoint {
            state: ConnState::Opening,
            snd_una: 0,
            snd_nxt: 0,
            snd_end: 1, // data starts after the SYN sequence slot
            cwnd: (cfg.init_cwnd_segs * cfg.mss) as f64,
            ssthresh: cfg.init_ssthresh as f64,
            dup_acks: 0,
            in_recovery: false,
            recover: 0,
            srtt: None,
            rttvar: 0.0,
            rto: Duration::from_millis(10),
            rtx_gen: 0,
            rtx_armed: false,
            retrans_count: 0,
            rtt_probe: None,
            frames: VecDeque::new(),
            fin_queued: false,
            fin_seq: None,
            fin_acked: false,
            rcv_nxt: 0,
            ooo: Vec::new(),
            sacked: Vec::new(),
            delack_count: 0,
            delack_gen: 0,
            delack_armed: false,
            peer_fin: None,
            ece_pending: false,
            ecn_recover: 0,
            cwr_pending: false,
        }
    }

    #[inline]
    fn flight(&self) -> u64 {
        self.snd_nxt.saturating_sub(self.snd_una)
    }
}

/// Counters a connection accumulates over its lifetime.
#[derive(Debug, Default, Clone)]
pub struct TcpStats {
    pub segs_sent: u64,
    pub segs_retransmitted: u64,
    pub timeouts: u64,
    pub fast_retransmits: u64,
    pub ecn_reductions: u64,
    pub bytes_sent: u64,
}

/// A bidirectional TCP connection between two endpoints.
#[derive(Debug)]
pub struct Connection {
    pub id: ConnId,
    cfg: TcpConfig,
    ends: [Endpoint; 2],
    syn_retrans: u32,
    conn_gen: u64,
    established: bool,
    pub stats: TcpStats,
}

impl Connection {
    pub fn new(id: ConnId, cfg: TcpConfig) -> Self {
        let ends = [Endpoint::new(&cfg), Endpoint::new(&cfg)];
        Connection {
            id,
            cfg,
            ends,
            syn_retrans: 0,
            conn_gen: 0,
            established: false,
            stats: TcpStats::default(),
        }
    }

    #[inline]
    fn ep(&mut self, side: Side) -> &mut Endpoint {
        &mut self.ends[side.index()]
    }

    /// True once the connection may be reaped by the owner.
    pub fn is_dead(&self) -> bool {
        self.ends[0].state == ConnState::Dead && self.ends[1].state == ConnState::Dead
    }

    pub fn is_established(&self) -> bool {
        self.established
    }

    /// Bytes queued but not yet sent by `side` (diagnostics).
    pub fn backlog(&self, side: Side) -> u64 {
        let e = &self.ends[side.index()];
        e.snd_end.saturating_sub(e.snd_nxt)
    }

    // ---------------------------------------------------------------
    // Entry points
    // ---------------------------------------------------------------

    /// Opener kicks off the three-way handshake.
    pub fn open(&mut self, now: SimTime, out: &mut TcpOut) {
        let _ = now;
        self.send_syn(out);
        self.conn_gen += 1;
        let gen = self.conn_gen;
        out.timers.push(TimerReq {
            kind: TimerKind::Conn,
            gen,
            delay: Duration::from_millis(10).max(self.cfg.min_rto * 4),
        });
    }

    fn send_syn(&mut self, out: &mut TcpOut) {
        let id = self.id;
        out.segs.push(Segment {
            conn: id,
            from: Side::Opener,
            seq: 0,
            ack: 0,
            len: 0,
            flags: Flags::SYN,
            ece: false,
            cwr: false,
            sack: SackList::EMPTY,
        });
        self.stats.segs_sent += 1;
    }

    /// Queue a framed application message for transmission by `side`.
    pub fn send_msg(&mut self, side: Side, msg: MsgId, bytes: u64, now: SimTime, out: &mut TcpOut) {
        assert!(bytes > 0, "empty messages are not framable");
        let established = self.established;
        let e = self.ep(side);
        if e.state == ConnState::Dead {
            return;
        }
        e.snd_end += bytes;
        let end_seq = e.snd_end;
        e.frames.push_back(Frame {
            msg,
            end_seq,
            len: bytes,
            sent_at: now,
        });
        if established {
            self.pump(side, now, out);
        }
    }

    /// Graceful close from `side`: flush pending data then FIN.
    pub fn close(&mut self, side: Side, now: SimTime, out: &mut TcpOut) {
        let e = self.ep(side);
        if e.state == ConnState::Dead || e.fin_queued {
            return;
        }
        e.fin_queued = true;
        if e.state == ConnState::Established {
            e.state = ConnState::Closing;
        }
        self.pump(side, now, out);
    }

    /// Abort immediately (sends RST; both directions die).
    pub fn abort(&mut self, out: &mut TcpOut) {
        if self.is_dead() {
            return;
        }
        let id = self.id;
        out.segs.push(Segment {
            conn: id,
            from: Side::Opener,
            seq: self.ends[0].snd_nxt,
            ack: 0,
            len: 0,
            flags: Flags::RST,
            ece: false,
            cwr: false,
            sack: SackList::EMPTY,
        });
        self.ends[0].state = ConnState::Dead;
        self.ends[1].state = ConnState::Dead;
        out.notes.push(TcpAppNote::Reset);
    }

    /// Handle the connection-establishment timer (SYN retransmit).
    pub fn on_conn_timer(&mut self, gen: u64, now: SimTime, out: &mut TcpOut) {
        let _ = now;
        if gen != self.conn_gen || self.established || self.is_dead() {
            return;
        }
        self.syn_retrans += 1;
        if self.syn_retrans > self.cfg.max_syn_retrans {
            self.ends[0].state = ConnState::Dead;
            self.ends[1].state = ConnState::Dead;
            out.notes.push(TcpAppNote::Reset);
            return;
        }
        self.send_syn(out);
        self.stats.segs_retransmitted += 1;
        self.conn_gen += 1;
        let gen = self.conn_gen;
        let backoff = Duration::from_millis(10).max(self.cfg.min_rto * 4)
            * (1 << self.syn_retrans.min(6)) as u64;
        out.timers.push(TimerReq {
            kind: TimerKind::Conn,
            gen,
            delay: backoff.min(self.cfg.max_rto),
        });
    }

    /// Handle an arriving segment at `side` (i.e. `seg.from == side.other()`).
    /// `ce` is true if the packet carried an ECN congestion mark.
    pub fn on_segment(
        &mut self,
        side: Side,
        seg: &Segment,
        ce: bool,
        now: SimTime,
        out: &mut TcpOut,
    ) {
        self.on_segments(side, seg, 1, ce, now, out);
    }

    /// Handle an arriving segment that stands for `train` back-to-back
    /// wire segments (train mode): `seg.len` covers the whole span, and
    /// delayed-ACK accounting advances by the full segment count so one
    /// train generates the same ACK cadence decision a burst would.
    pub fn on_segments(
        &mut self,
        side: Side,
        seg: &Segment,
        train: u16,
        ce: bool,
        now: SimTime,
        out: &mut TcpOut,
    ) {
        debug_assert_eq!(seg.from, side.other());
        if self.ends[side.index()].state == ConnState::Dead {
            return;
        }
        if seg.flags.has(Flags::RST) {
            self.ends[0].state = ConnState::Dead;
            self.ends[1].state = ConnState::Dead;
            out.notes.push(TcpAppNote::Reset);
            return;
        }

        // --- handshake ---
        if seg.flags.has(Flags::SYN) {
            self.handle_syn(side, seg, now, out);
            return;
        }

        if ce && self.cfg.ecn {
            self.ep(side).ece_pending = true;
        }
        if seg.cwr {
            self.ep(side).ece_pending = false;
        }

        let mut need_ack = false;

        // --- receive path: new data / FIN ---
        if seg.len > 0 || seg.flags.has(Flags::FIN) {
            need_ack = self.receive_data(side, seg, train.max(1) as u32, now, out);
        }

        // --- send path: process the ACK field ---
        if seg.flags.has(Flags::ACK) {
            self.process_ack(side, seg, now, out);
        }

        if need_ack {
            self.maybe_ack(side, out);
        }

        self.check_closed(out);
    }

    /// Handle the retransmission timer for `side`.
    pub fn on_rtx_timer(&mut self, side: Side, gen: u64, now: SimTime, out: &mut TcpOut) {
        {
            let e = self.ep(side);
            if gen != e.rtx_gen || !e.rtx_armed || e.state == ConnState::Dead {
                return;
            }
            e.rtx_armed = false;
            if e.flight() == 0 {
                return;
            }
        }
        let mss = self.cfg.mss;
        let max_retrans = self.cfg.max_retrans;
        let max_rto = self.cfg.max_rto;
        let e = self.ep(side);
        e.retrans_count += 1;
        let exhausted = e.retrans_count > max_retrans;
        if exhausted {
            self.abort(out);
            return;
        }
        // Classic timeout response: collapse to one segment, go-back-N.
        let e = self.ep(side);
        e.ssthresh = (e.flight() as f64 / 2.0).max(2.0 * mss as f64);
        e.cwnd = mss as f64;
        e.snd_nxt = e.snd_una;
        e.in_recovery = false;
        e.dup_acks = 0;
        e.sacked.clear();
        e.rtt_probe = None; // Karn: no sampling over retransmits
        e.rto = (e.rto * 2).min(max_rto);
        self.stats.timeouts += 1;
        self.stats.segs_retransmitted += 1;
        dclue_trace::trace_event!(
            Net,
            now.0,
            "tcp_rto",
            self.id.0,
            self.ep(side).retrans_count
        );
        dclue_trace::trace_span!(
            Net,
            Counter,
            now.0,
            "cwnd",
            self.id.0,
            self.ep(side).cwnd as i64
        );
        self.pump(side, now, out);
    }

    /// Handle the delayed-ACK timer for `side`.
    pub fn on_ack_timer(&mut self, side: Side, gen: u64, now: SimTime, out: &mut TcpOut) {
        let _ = now;
        let e = self.ep(side);
        if gen != e.delack_gen || !e.delack_armed || e.state == ConnState::Dead {
            return;
        }
        e.delack_armed = false;
        if e.delack_count > 0 {
            self.emit_ack(side, out);
        }
    }

    // ---------------------------------------------------------------
    // Internals
    // ---------------------------------------------------------------

    fn handle_syn(&mut self, side: Side, _seg: &Segment, now: SimTime, out: &mut TcpOut) {
        let id = self.id;
        match side {
            Side::Acceptor => {
                // SYN from opener: reply SYN-ACK (idempotent on dup SYN).
                let e = self.ep(Side::Acceptor);
                e.rcv_nxt = e.rcv_nxt.max(1);
                out.segs.push(Segment {
                    conn: id,
                    from: Side::Acceptor,
                    seq: 0,
                    ack: 1,
                    len: 0,
                    flags: Flags::SYN.with(Flags::ACK),
                    ece: false,
                    cwr: false,
                    sack: SackList::EMPTY,
                });
                self.stats.segs_sent += 1;
            }
            Side::Opener => {
                // SYN-ACK: handshake complete from our perspective.
                let was_established = self.established;
                self.established = true;
                let e = self.ep(Side::Opener);
                e.rcv_nxt = e.rcv_nxt.max(1);
                if e.state == ConnState::Opening {
                    e.state = ConnState::Established;
                }
                e.snd_una = e.snd_una.max(1);
                e.snd_nxt = e.snd_nxt.max(1);
                // Also treat the acceptor as live (simulation shortcut:
                // its state flips when our ACK/data arrives, but marking
                // here avoids a stuck acceptor if that segment is lost —
                // the opener's retransmissions cover it).
                if self.ends[Side::Acceptor.index()].state == ConnState::Opening {
                    self.ends[Side::Acceptor.index()].state = ConnState::Established;
                    self.ends[Side::Acceptor.index()].snd_una = 1;
                    self.ends[Side::Acceptor.index()].snd_nxt = 1;
                }
                if !was_established {
                    out.notes.push(TcpAppNote::Established);
                    // The pending SYN-retransmit timer is now moot.
                    out.cancels.push(TimerKind::Conn);
                }
                // ACK the SYN-ACK and start pushing any queued data.
                self.emit_ack(Side::Opener, out);
                self.pump(Side::Opener, now, out);
                self.pump(Side::Acceptor, now, out);
            }
        }
    }

    /// Returns true if an ACK should be generated. `count` is the number
    /// of wire segments this call stands for (1, or a train length).
    fn receive_data(
        &mut self,
        side: Side,
        seg: &Segment,
        count: u32,
        now: SimTime,
        out: &mut TcpOut,
    ) -> bool {
        let e = self.ep(side);
        let start = seg.seq;
        let mut end = seg.seq + seg.len;
        if seg.flags.has(Flags::FIN) {
            e.peer_fin = Some(end);
            end += 1; // FIN occupies one sequence slot
        }
        if end <= e.rcv_nxt {
            // Pure duplicate — ACK immediately so the sender sees progress.
            self.emit_ack(side, out);
            return false;
        }
        if start > e.rcv_nxt {
            // Out of order: remember the interval, send immediate dup ACK.
            insert_interval(&mut e.ooo, (start, end));
            self.emit_ack(side, out);
            return false;
        }
        // In-order (possibly overlapping) data: advance rcv_nxt.
        e.rcv_nxt = end;
        // Pull any now-contiguous out-of-order intervals.
        loop {
            let mut advanced = false;
            e.ooo.retain(|&(s, en)| {
                if s <= e.rcv_nxt {
                    if en > e.rcv_nxt {
                        e.rcv_nxt = en;
                    }
                    advanced = true;
                    false
                } else {
                    true
                }
            });
            if !advanced {
                break;
            }
        }
        let rcv_nxt = e.rcv_nxt;
        e.delack_count += count;
        // Message framing: deliver every message from the *peer* whose end
        // sequence is now contiguous.
        let peer = side.other();
        let pe = self.ep(peer);
        while let Some(f) = pe.frames.front() {
            if f.end_seq <= rcv_nxt {
                let f = *f;
                pe.frames.pop_front();
                out.notes.push(TcpAppNote::MessageDelivered {
                    side,
                    msg: f.msg,
                    bytes: f.len,
                    sent_at: f.sent_at,
                });
            } else {
                break;
            }
        }
        let _ = now;
        true
    }

    fn process_ack(&mut self, side: Side, seg: &Segment, now: SimTime, out: &mut TcpOut) {
        let mss = self.cfg.mss as f64;
        let min_rto = self.cfg.min_rto;
        let max_rto = self.cfg.max_rto;
        let ack = seg.ack;
        let ece = seg.ece && self.cfg.ecn;
        let sack_on = self.cfg.sack;
        let train_cfg = self.cfg.train;

        let e = self.ep(side);
        // Ingest SACK blocks into the scoreboard.
        if sack_on {
            for &(a, b) in seg.sack.iter() {
                insert_interval(&mut e.sacked, (a, b));
            }
            // Anything at/below the cumulative ACK is implicitly covered.
            e.sacked.retain(|&(_, b)| b > ack);
            for iv in e.sacked.iter_mut() {
                iv.0 = iv.0.max(ack);
            }
        }
        if e.state == ConnState::Opening {
            // First ACK reaching the acceptor completes its handshake.
            e.state = ConnState::Established;
            e.snd_una = e.snd_una.max(1);
            e.snd_nxt = e.snd_nxt.max(1);
        }

        if ack > e.snd_una {
            // --- new data acknowledged ---
            let acked = ack - e.snd_una;
            e.snd_una = ack;
            e.retrans_count = 0;
            // RTT sample (Karn-compliant: probe cleared on retransmit).
            if let Some((pseq, t0)) = e.rtt_probe {
                if ack >= pseq {
                    let sample = now.since(t0).as_secs_f64();
                    match e.srtt {
                        None => {
                            e.srtt = Some(sample);
                            e.rttvar = sample / 2.0;
                        }
                        Some(srtt) => {
                            let err = sample - srtt;
                            e.srtt = Some(srtt + 0.125 * err);
                            e.rttvar = 0.75 * e.rttvar + 0.25 * err.abs();
                        }
                    }
                    let rto = Duration::from_secs_f64(
                        e.srtt.unwrap_or(sample) + 4.0 * e.rttvar.max(1e-6),
                    );
                    e.rto = rto.max(min_rto).min(max_rto);
                    e.rtt_probe = None;
                }
            }
            if e.in_recovery {
                if ack >= e.recover {
                    // Full recovery.
                    e.in_recovery = false;
                    e.cwnd = e.ssthresh;
                    e.dup_acks = 0;
                    e.sacked.clear();
                } else {
                    // NewReno partial ACK: retransmit the next hole.
                    e.cwnd = (e.cwnd - acked as f64 + mss).max(mss);
                    let id = self.id;
                    let mss = self.cfg.mss;
                    let (rseq, rlen, ack_field, ece_echo) = {
                        let e = self.ep(side);
                        let hole = if sack_on {
                            first_hole(&e.sacked, e.snd_una, e.snd_nxt, mss)
                        } else {
                            None
                        };
                        let (rseq, rlen) = hole
                            .unwrap_or((e.snd_una, mss.min(e.snd_end.saturating_sub(e.snd_una))));
                        (rseq, rlen, e.rcv_nxt, e.ece_pending)
                    };
                    if rlen > 0 {
                        out.segs.push(Segment {
                            conn: id,
                            from: side,
                            seq: rseq,
                            ack: ack_field,
                            len: rlen,
                            flags: Flags::ACK,
                            ece: ece_echo,
                            cwr: false,
                            sack: SackList::EMPTY,
                        });
                        self.stats.segs_retransmitted += 1;
                        self.stats.segs_sent += 1;
                    }
                    self.rearm_rtx(side, out);
                    self.pump(side, now, out);
                    return;
                }
            } else {
                // Normal cwnd growth.
                if e.cwnd < e.ssthresh {
                    if train_cfg && acked as f64 > 2.0 * mss {
                        // Byte-counted slow start: in exact mode the
                        // receiver ACKs every 2nd segment, so each ACK
                        // covers ≤ 2·mss and grows cwnd by min(acked,
                        // mss) = acked/2. When one cumulative ACK covers
                        // a whole train, the same per-acked-byte rate
                        // keeps the cwnd trajectory aligned with exact
                        // mode (RFC 3465 spirit, L matched to delack).
                        e.cwnd += acked as f64 / 2.0;
                    } else {
                        e.cwnd += (acked as f64).min(mss);
                    }
                } else if train_cfg {
                    // Byte-counted congestion avoidance: in exact mode
                    // the receiver ACKs every 2nd segment, so each ACK
                    // grows cwnd by mss²/cwnd ≈ mss·acked/(2·cwnd). The
                    // byte-counted form yields the same growth per acked
                    // byte when a single ACK covers a whole train.
                    e.cwnd += mss * (acked as f64) / (2.0 * e.cwnd);
                } else {
                    e.cwnd += mss * mss / e.cwnd;
                }
                e.dup_acks = 0;
            }
            // FIN acked?
            if let Some(fs) = e.fin_seq {
                if ack > fs {
                    e.fin_acked = true;
                }
            }
            // ECN response to ECE on a fresh ACK.
            if ece && ack > e.ecn_recover {
                e.ssthresh = (e.cwnd / 2.0).max(2.0 * mss);
                e.cwnd = e.ssthresh;
                e.ecn_recover = e.snd_nxt;
                e.cwr_pending = true;
                self.stats.ecn_reductions += 1;
                dclue_trace::trace_event!(Net, now.0, "tcp_ecn_reduction", self.id.0);
                dclue_trace::trace_span!(
                    Net,
                    Counter,
                    now.0,
                    "cwnd",
                    self.id.0,
                    self.ep(side).cwnd as i64
                );
            }
            self.rearm_or_cancel_rtx(side, out);
            self.pump(side, now, out);
        } else if ack == e.snd_una && e.flight() > 0 && seg.len == 0 && !seg.flags.has(Flags::FIN) {
            // --- duplicate ACK ---
            e.dup_acks += 1;
            if e.in_recovery {
                // cwnd inflation keeps the pipe full during recovery;
                // with SACK, also repair the next hole immediately.
                e.cwnd += mss;
                if sack_on {
                    let id = self.id;
                    let mss_b = self.cfg.mss;
                    let (hole, ack_field, ece_echo) = {
                        let e = self.ep(side);
                        (
                            first_hole(&e.sacked, e.snd_una, e.snd_nxt, mss_b),
                            e.rcv_nxt,
                            e.ece_pending,
                        )
                    };
                    if let Some((rseq, rlen)) = hole {
                        if rlen > 0 {
                            out.segs.push(Segment {
                                conn: id,
                                from: side,
                                seq: rseq,
                                ack: ack_field,
                                len: rlen,
                                flags: Flags::ACK,
                                ece: ece_echo,
                                cwr: false,
                                sack: SackList::EMPTY,
                            });
                            self.stats.segs_retransmitted += 1;
                            self.stats.segs_sent += 1;
                        }
                    }
                }
                self.pump(side, now, out);
            } else if e.dup_acks == 3 {
                // Fast retransmit.
                e.ssthresh = (e.flight() as f64 / 2.0).max(2.0 * mss);
                e.cwnd = e.ssthresh + 3.0 * mss;
                e.in_recovery = true;
                e.recover = e.snd_nxt;
                e.rtt_probe = None;
                let id = self.id;
                dclue_trace::trace_event!(Net, now.0, "tcp_fast_retransmit", id.0);
                dclue_trace::trace_span!(
                    Net,
                    Counter,
                    now.0,
                    "cwnd",
                    id.0,
                    self.ep(side).cwnd as i64
                );
                let mss_b = self.cfg.mss;
                let (rseq, rlen, ack_field, ece_echo) = {
                    let e = self.ep(side);
                    let hole = if sack_on {
                        first_hole(&e.sacked, e.snd_una, e.snd_nxt, mss_b)
                    } else {
                        None
                    };
                    let (rseq, rlen) =
                        hole.unwrap_or((e.snd_una, mss_b.min(e.snd_end.saturating_sub(e.snd_una))));
                    (rseq, rlen, e.rcv_nxt, e.ece_pending)
                };
                if rlen > 0 {
                    out.segs.push(Segment {
                        conn: id,
                        from: side,
                        seq: rseq,
                        ack: ack_field,
                        len: rlen,
                        flags: Flags::ACK,
                        ece: ece_echo,
                        cwr: false,
                        sack: SackList::EMPTY,
                    });
                    self.stats.fast_retransmits += 1;
                    self.stats.segs_retransmitted += 1;
                    self.stats.segs_sent += 1;
                }
                self.rearm_rtx(side, out);
            }
        }
    }

    /// Push as much queued data as the congestion and receive windows allow.
    fn pump(&mut self, side: Side, now: SimTime, out: &mut TcpOut) {
        if !self.established {
            return;
        }
        let mss = self.cfg.mss;
        let rwnd = self.cfg.rwnd;
        let id = self.id;
        let mut sent_any = false;
        loop {
            let e = self.ep(side);
            if e.state == ConnState::Dead {
                return;
            }
            let window = (e.cwnd as u64).min(rwnd);
            let usable = (e.snd_una + window).saturating_sub(e.snd_nxt);
            let avail = e.snd_end.saturating_sub(e.snd_nxt);
            let len = mss.min(usable).min(avail);
            if len == 0 {
                // Maybe just a FIN to send (first time, or a go-back-N
                // retransmission after a timeout rewound snd_nxt onto it).
                let fin_due = e.fin_queued
                    && !e.fin_acked
                    && (e.fin_seq.is_none() || e.fin_seq == Some(e.snd_nxt));
                if avail == 0 && fin_due && usable > 0 {
                    let seq = e.snd_nxt;
                    e.fin_seq = Some(seq);
                    e.snd_nxt += 1;
                    let ack_field = e.rcv_nxt;
                    let ece = e.ece_pending;
                    out.segs.push(Segment {
                        conn: id,
                        from: side,
                        seq,
                        ack: ack_field,
                        len: 0,
                        flags: Flags::FIN.with(Flags::ACK),
                        ece,
                        cwr: false,
                        sack: SackList::EMPTY,
                    });
                    self.stats.segs_sent += 1;
                    sent_any = true;
                    self.rearm_rtx(side, out);
                }
                break;
            }
            let seq = e.snd_nxt;
            e.snd_nxt += len;
            if e.rtt_probe.is_none() {
                e.rtt_probe = Some((e.snd_nxt, now));
            }
            let ack_field = e.rcv_nxt;
            let ece = e.ece_pending;
            let cwr = std::mem::take(&mut e.cwr_pending);
            // Data carries a piggybacked ACK.
            e.delack_count = 0;
            out.segs.push(Segment {
                conn: id,
                from: side,
                seq,
                ack: ack_field,
                len,
                flags: Flags::ACK,
                ece,
                cwr,
                sack: SackList::EMPTY,
            });
            self.stats.segs_sent += 1;
            self.stats.bytes_sent += len;
            sent_any = true;
        }
        if sent_any {
            self.rearm_rtx(side, out);
        }
    }

    fn rearm_rtx(&mut self, side: Side, out: &mut TcpOut) {
        let e = self.ep(side);
        e.rtx_gen += 1;
        e.rtx_armed = true;
        out.timers.push(TimerReq {
            kind: TimerKind::Rtx(side),
            gen: e.rtx_gen,
            delay: e.rto,
        });
    }

    fn rearm_or_cancel_rtx(&mut self, side: Side, out: &mut TcpOut) {
        let flight = self.ep(side).flight();
        if flight > 0 {
            self.rearm_rtx(side, out);
        } else {
            let e = self.ep(side);
            e.rtx_armed = false;
            e.rtx_gen += 1;
            out.cancels.push(TimerKind::Rtx(side));
        }
    }

    /// Delayed-ACK policy: ACK every second in-order segment immediately,
    /// otherwise arm the delayed-ACK timer.
    fn maybe_ack(&mut self, side: Side, out: &mut TcpOut) {
        let delack = self.cfg.delack;
        let e = self.ep(side);
        if e.delack_count >= 2 || e.peer_fin.is_some() {
            self.emit_ack(side, out);
        } else if !e.delack_armed {
            e.delack_armed = true;
            e.delack_gen += 1;
            out.timers.push(TimerReq {
                kind: TimerKind::DelAck(side),
                gen: e.delack_gen,
                delay: delack,
            });
        }
    }

    fn emit_ack(&mut self, side: Side, out: &mut TcpOut) {
        let id = self.id;
        let sack_on = self.cfg.sack;
        let e = self.ep(side);
        e.delack_count = 0;
        if e.delack_armed {
            // This ACK supersedes the pending delayed-ACK timer.
            out.cancels.push(TimerKind::DelAck(side));
        }
        e.delack_armed = false;
        // Up to 3 SACK blocks, most recently received ranges first
        // (approximated by taking the highest ranges).
        let mut sack = SackList::EMPTY;
        if sack_on {
            for &iv in e.ooo.iter().rev().take(3) {
                sack.push(iv);
            }
        }
        let seg = Segment {
            conn: id,
            from: side,
            seq: e.snd_nxt,
            ack: e.rcv_nxt,
            len: 0,
            flags: Flags::ACK,
            ece: e.ece_pending,
            cwr: false,
            sack,
        };
        out.segs.push(seg);
        self.stats.segs_sent += 1;
    }

    fn check_closed(&mut self, out: &mut TcpOut) {
        // Both FINs sent & acked, and both sides saw the peer FIN.
        let done = |e: &Endpoint| e.fin_acked && e.peer_fin.is_some();
        if self.ends.iter().all(done) && self.ends[0].state != ConnState::Dead {
            self.ends[0].state = ConnState::Dead;
            self.ends[1].state = ConnState::Dead;
            out.notes.push(TcpAppNote::Closed);
        }
    }

    /// Current congestion window of `side` in bytes (diagnostics).
    pub fn cwnd(&self, side: Side) -> u64 {
        self.ends[side.index()].cwnd as u64
    }

    /// Configured maximum segment size.
    pub fn mss(&self) -> u64 {
        self.cfg.mss
    }

    /// True when `side` is in a regime where back-to-back full-size
    /// segments may be coalesced into one train event without touching
    /// congestion dynamics: established, not in loss recovery, no
    /// dup-ACKs or SACK holes outstanding, no congestion-response
    /// signal pending. Anywhere else, segments stay exact.
    ///
    /// Two states deliberately do *not* gate trains:
    ///
    /// - `ece_pending` (we saw CE on traffic *we received* and are
    ///   echoing ECE outward) describes the reverse path's congestion,
    ///   not this sender's response state, and on a one-way bulk flow
    ///   with a congested ACK path it can persist for most of the
    ///   transfer. A run of segments all carrying the same ECE echo
    ///   coalesces losslessly — the peer's window reduction is
    ///   once-per-RTT either way (`ack > ecn_recover` guard).
    /// - Slow start (`cwnd < ssthresh`): the sender's burst structure is
    ///   preserved by the train mechanics themselves (wire time, queue
    ///   occupancy and RED/ECN decisions all see member counts), and
    ///   cwnd growth under a train's cumulative ACK is byte-counted at
    ///   the exact-mode delack rate, so the window trajectory matches.
    pub fn train_ok(&self, side: Side) -> bool {
        let e = &self.ends[side.index()];
        self.established
            && e.state == ConnState::Established
            && !e.in_recovery
            && e.dup_acks == 0
            && e.sacked.is_empty()
            && !e.cwr_pending
    }

    /// Current smoothed RTT estimate of `side`, if any (diagnostics).
    pub fn srtt(&self, side: Side) -> Option<Duration> {
        self.ends[side.index()].srtt.map(Duration::from_secs_f64)
    }
}

/// First hole `[start, len)` at/above `from` not covered by `sacked`
/// and below `limit`, clipped to `mss`.
fn first_hole(sacked: &[(u64, u64)], from: u64, limit: u64, mss: u64) -> Option<(u64, u64)> {
    let mut pos = from;
    for &(a, b) in sacked {
        if pos < a {
            break;
        }
        if pos < b {
            pos = b;
        }
    }
    if pos >= limit {
        return None;
    }
    // Hole extends to the next sacked block or the limit.
    let end = sacked
        .iter()
        .map(|&(a, _)| a)
        .filter(|&a| a > pos)
        .min()
        .unwrap_or(limit)
        .min(limit);
    Some((pos, (end - pos).min(mss)))
}

/// Insert `(start, end)` into a sorted disjoint interval set, coalescing
/// in place. Intervals that overlap or touch the new one are merged into
/// it; the set's allocation is reused, so the steady-state cost is a
/// shift, not a fresh `Vec` per call.
fn insert_interval(set: &mut Vec<(u64, u64)>, iv: (u64, u64)) {
    let (mut s, mut e) = iv;
    // First interval whose end reaches `s` — everything before it stays.
    let lo = set.partition_point(|&(_, b)| b < s);
    // Consume every interval overlapping or touching `[s, e)`.
    let mut hi = lo;
    while hi < set.len() && set[hi].0 <= e {
        s = s.min(set[hi].0);
        e = e.max(set[hi].1);
        hi += 1;
    }
    if lo == hi {
        set.insert(lo, (s, e));
    } else {
        set[lo] = (s, e);
        set.drain(lo + 1..hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TcpConfig {
        TcpConfig::default()
    }

    /// Test harness: shuttles segments between the two endpoints of one
    /// connection with a fixed one-way delay, optionally dropping chosen
    /// segments. Runs timers through a tiny local event queue.
    struct Pipe {
        conn: Connection,
        now: SimTime,
        queue: Vec<(SimTime, PipeEv)>,
        delivered: Vec<(Side, MsgId)>,
        established: bool,
        reset: bool,
        closed: bool,
        /// Drop the nth data segment sent (counting payload segments only).
        drop_data_nth: Vec<u64>,
        /// Deliver the nth data segment with an ECN CE mark.
        mark_ce_nth: Vec<u64>,
        data_seen: u64,
        one_way: Duration,
    }

    enum PipeEv {
        Deliver(Side, Segment),
        DeliverCe(Side, Segment),
        Timer(TimerKind, u64),
    }

    impl Pipe {
        fn new(cfg: TcpConfig) -> Self {
            Pipe {
                conn: Connection::new(ConnId(1), cfg),
                now: SimTime::ZERO,
                queue: Vec::new(),
                delivered: Vec::new(),
                established: false,
                reset: false,
                closed: false,
                drop_data_nth: Vec::new(),
                mark_ce_nth: Vec::new(),
                data_seen: 0,
                one_way: Duration::from_micros(50),
            }
        }

        fn absorb(&mut self, out: TcpOut) {
            for seg in out.segs {
                let to = seg.from.other();
                let mut drop_it = false;
                let mut mark_ce = false;
                if seg.len > 0 {
                    self.data_seen += 1;
                    if self.drop_data_nth.contains(&self.data_seen) {
                        drop_it = true;
                    }
                    if self.mark_ce_nth.contains(&self.data_seen) {
                        mark_ce = true;
                    }
                }
                if !drop_it {
                    let ev = if mark_ce {
                        PipeEv::DeliverCe(to, seg)
                    } else {
                        PipeEv::Deliver(to, seg)
                    };
                    self.queue.push((self.now + self.one_way, ev));
                }
            }
            for t in out.timers {
                self.queue
                    .push((self.now + t.delay, PipeEv::Timer(t.kind, t.gen)));
            }
            for n in out.notes {
                match n {
                    TcpAppNote::Established => self.established = true,
                    TcpAppNote::MessageDelivered { side, msg, .. } => {
                        self.delivered.push((side, msg))
                    }
                    TcpAppNote::Reset => self.reset = true,
                    TcpAppNote::Closed => self.closed = true,
                }
            }
        }

        fn step(&mut self) -> bool {
            if self.queue.is_empty() {
                return false;
            }
            // Pop earliest (stable for ties by index order).
            let idx = self
                .queue
                .iter()
                .enumerate()
                .min_by_key(|(i, (t, _))| (*t, *i))
                .map(|(i, _)| i)
                .unwrap();
            let (t, ev) = self.queue.remove(idx);
            self.now = t;
            let mut out = TcpOut::new();
            match ev {
                PipeEv::Deliver(side, seg) => {
                    self.conn.on_segment(side, &seg, false, self.now, &mut out)
                }
                PipeEv::DeliverCe(side, seg) => {
                    self.conn.on_segment(side, &seg, true, self.now, &mut out)
                }
                PipeEv::Timer(kind, gen) => match kind {
                    TimerKind::Rtx(s) => self.conn.on_rtx_timer(s, gen, self.now, &mut out),
                    TimerKind::DelAck(s) => self.conn.on_ack_timer(s, gen, self.now, &mut out),
                    TimerKind::Conn => self.conn.on_conn_timer(gen, self.now, &mut out),
                },
            }
            self.absorb(out);
            true
        }

        fn run(&mut self, max_steps: usize) {
            for _ in 0..max_steps {
                if !self.step() {
                    break;
                }
            }
        }

        fn open(&mut self) {
            let mut out = TcpOut::new();
            self.conn.open(self.now, &mut out);
            self.absorb(out);
        }

        fn send(&mut self, side: Side, msg: u64, bytes: u64) {
            let mut out = TcpOut::new();
            self.conn
                .send_msg(side, MsgId(msg), bytes, self.now, &mut out);
            self.absorb(out);
        }

        fn close(&mut self, side: Side) {
            let mut out = TcpOut::new();
            self.conn.close(side, self.now, &mut out);
            self.absorb(out);
        }
    }

    #[test]
    fn handshake_establishes() {
        let mut p = Pipe::new(cfg());
        p.open();
        p.run(50);
        assert!(p.established);
        assert!(p.conn.is_established());
    }

    #[test]
    fn small_message_delivered() {
        let mut p = Pipe::new(cfg());
        p.open();
        p.send(Side::Opener, 7, 250);
        p.run(200);
        assert_eq!(p.delivered, vec![(Side::Acceptor, MsgId(7))]);
    }

    #[test]
    fn large_message_segments_and_delivers() {
        let mut p = Pipe::new(cfg());
        p.open();
        p.send(Side::Opener, 1, 64 * 1024); // 45 segments
        p.run(5_000);
        assert_eq!(p.delivered, vec![(Side::Acceptor, MsgId(1))]);
        assert!(p.conn.stats.segs_sent > 45);
    }

    #[test]
    fn bidirectional_messages() {
        let mut p = Pipe::new(cfg());
        p.open();
        p.send(Side::Opener, 1, 8192);
        p.send(Side::Acceptor, 2, 8192);
        p.run(2_000);
        assert!(p.delivered.contains(&(Side::Acceptor, MsgId(1))));
        assert!(p.delivered.contains(&(Side::Opener, MsgId(2))));
    }

    #[test]
    fn many_messages_in_order() {
        let mut p = Pipe::new(cfg());
        p.open();
        for i in 0..20 {
            p.send(Side::Opener, i, 250 + i * 10);
        }
        p.run(5_000);
        let got: Vec<u64> = p.delivered.iter().map(|&(_, m)| m.0).collect();
        assert_eq!(got, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn lost_data_segment_recovers_by_fast_retransmit() {
        let mut p = Pipe::new(cfg());
        p.open();
        // One big message; drop the 2nd data segment. Later segments
        // trigger dup ACKs and fast retransmit fills the hole.
        p.send(Side::Opener, 1, 32 * 1024);
        p.drop_data_nth = vec![2];
        p.run(10_000);
        assert_eq!(p.delivered, vec![(Side::Acceptor, MsgId(1))]);
        assert!(
            p.conn.stats.fast_retransmits >= 1 || p.conn.stats.timeouts >= 1,
            "loss must be repaired: {:?}",
            p.conn.stats
        );
    }

    #[test]
    fn lost_tail_segment_recovers_by_timeout() {
        let mut p = Pipe::new(cfg());
        p.open();
        p.send(Side::Opener, 1, 2920); // exactly 2 segments
        p.drop_data_nth = vec![2]; // tail loss: no dup ACKs possible
        p.run(10_000);
        assert_eq!(p.delivered, vec![(Side::Acceptor, MsgId(1))]);
        assert!(p.conn.stats.timeouts >= 1);
    }

    #[test]
    fn multiple_losses_still_deliver() {
        let mut p = Pipe::new(cfg());
        p.open();
        p.send(Side::Opener, 1, 64 * 1024);
        p.drop_data_nth = vec![3, 5, 9];
        p.run(50_000);
        assert_eq!(p.delivered, vec![(Side::Acceptor, MsgId(1))]);
    }

    #[test]
    fn slow_start_grows_cwnd() {
        let mut p = Pipe::new(cfg());
        p.open();
        p.send(Side::Opener, 1, 64 * 1024);
        p.run(5_000);
        assert!(p.conn.cwnd(Side::Opener) > 2 * 1460);
        assert_eq!(
            p.conn.stats.timeouts, 0,
            "no spurious RTO: {:?}",
            p.conn.stats
        );
    }

    #[test]
    fn rtt_estimate_converges() {
        let mut p = Pipe::new(cfg());
        p.open();
        for i in 0..10 {
            p.send(Side::Opener, i, 1000);
        }
        p.run(5_000);
        let srtt = p.conn.srtt(Side::Opener).expect("srtt measured");
        // One-way delay is 50us, so RTT ~100us.
        assert!(
            srtt.as_micros_f64() > 50.0 && srtt.as_micros_f64() < 400.0,
            "srtt={srtt:?}"
        );
    }

    #[test]
    fn graceful_close_both_sides() {
        let mut p = Pipe::new(cfg());
        p.open();
        p.send(Side::Opener, 1, 500);
        p.run(500);
        p.close(Side::Opener);
        p.run(200);
        p.close(Side::Acceptor);
        p.run(500);
        assert!(p.closed, "connection should close gracefully");
        assert!(p.conn.is_dead());
    }

    #[test]
    fn close_flushes_pending_data_first() {
        let mut p = Pipe::new(cfg());
        p.open();
        p.send(Side::Opener, 1, 20_000);
        p.close(Side::Opener);
        p.close(Side::Acceptor);
        p.run(20_000);
        assert_eq!(p.delivered, vec![(Side::Acceptor, MsgId(1))]);
        assert!(p.closed);
    }

    #[test]
    fn abort_resets_both() {
        let mut p = Pipe::new(cfg());
        p.open();
        p.run(50);
        let mut out = TcpOut::new();
        p.conn.abort(&mut out);
        p.absorb(out);
        assert!(p.reset);
        assert!(p.conn.is_dead());
    }

    #[test]
    fn total_loss_eventually_resets() {
        let mut c = cfg();
        c.max_retrans = 3;
        let mut p = Pipe::new(c);
        p.open();
        p.run(20);
        // Drop all data segments from now on.
        p.drop_data_nth = (1..=1000).collect();
        p.send(Side::Opener, 1, 1000);
        p.run(100_000);
        assert!(p.reset, "must reset after exhausting retransmissions");
    }

    #[test]
    fn sack_repairs_multiple_holes_without_timeout() {
        // Several scattered losses inside one large window: the SACK
        // scoreboard should repair them all via fast recovery.
        let mut p = Pipe::new(cfg());
        p.open();
        p.run(50);
        p.send(Side::Opener, 1, 60 * 1024);
        // Past slow start: enough trailing segments for 3 dupacks each.
        p.drop_data_nth = vec![10, 14, 18];
        p.run(50_000);
        assert_eq!(p.delivered, vec![(Side::Acceptor, MsgId(1))]);
        assert_eq!(
            p.conn.stats.timeouts, 0,
            "SACK must avoid RTOs for scattered loss: {:?}",
            p.conn.stats
        );
        assert!(p.conn.stats.fast_retransmits >= 1);
    }

    #[test]
    fn sack_off_falls_back_to_newreno() {
        let mut c = cfg();
        c.sack = false;
        let mut p = Pipe::new(c);
        p.open();
        p.run(50);
        p.send(Side::Opener, 1, 60 * 1024);
        p.drop_data_nth = vec![4, 7, 11];
        p.run(100_000);
        assert_eq!(p.delivered, vec![(Side::Acceptor, MsgId(1))]);
    }

    #[test]
    fn sack_beats_newreno_on_scattered_loss() {
        let run = |sack: bool| -> (SimTime, u64) {
            let mut c = cfg();
            c.sack = sack;
            let mut p = Pipe::new(c);
            p.open();
            p.run(50);
            p.send(Side::Opener, 1, 60 * 1024);
            p.drop_data_nth = vec![4, 7, 11, 15];
            p.run(100_000);
            assert_eq!(p.delivered.len(), 1, "sack={sack}");
            (p.now, p.conn.stats.timeouts)
        };
        let (t_sack, to_sack) = run(true);
        let (t_reno, to_reno) = run(false);
        assert!(
            t_sack <= t_reno && to_sack <= to_reno,
            "sack {t_sack:?}/{to_sack} vs newreno {t_reno:?}/{to_reno}"
        );
    }

    #[test]
    fn first_hole_finds_gaps() {
        let sacked = vec![(10u64, 20u64), (30, 40)];
        // Hole at the front.
        assert_eq!(first_hole(&sacked, 0, 50, 1460), Some((0, 10)));
        // Hole between the blocks.
        assert_eq!(first_hole(&sacked, 10, 50, 1460), Some((20, 10)));
        assert_eq!(first_hole(&sacked, 20, 50, 1460), Some((20, 10)));
        // Hole after the last block.
        assert_eq!(first_hole(&sacked, 30, 50, 1460), Some((40, 10)));
        // Fully covered up to the limit.
        assert_eq!(first_hole(&sacked, 30, 40, 1460), None);
        // Clipped to mss.
        assert_eq!(first_hole(&[], 0, 10_000, 1460), Some((0, 1460)));
    }

    #[test]
    fn interval_insert_coalesces() {
        let mut set = vec![];
        insert_interval(&mut set, (10, 20));
        insert_interval(&mut set, (30, 40));
        insert_interval(&mut set, (15, 35));
        assert_eq!(set, vec![(10, 40)]);
        insert_interval(&mut set, (0, 5));
        assert_eq!(set, vec![(0, 5), (10, 40)]);
        insert_interval(&mut set, (5, 10));
        assert_eq!(set, vec![(0, 40)]);
    }

    #[test]
    fn ecn_mark_halves_cwnd_once_per_rtt() {
        let mut p = Pipe::new(cfg());
        p.open();
        // Mark two mid-transfer data segments CE; the receiver echoes
        // ECE and the sender must reduce cwnd exactly once per window.
        p.mark_ce_nth = vec![8, 9];
        p.send(Side::Opener, 1, 64 * 1024);
        p.run(10_000);
        assert_eq!(p.delivered, vec![(Side::Acceptor, MsgId(1))]);
        assert_eq!(
            p.conn.stats.ecn_reductions, 1,
            "two CE marks in one window reduce once: {:?}",
            p.conn.stats
        );
        assert_eq!(p.conn.stats.timeouts, 0, "ECN avoids loss entirely");
    }

    #[test]
    fn ecn_disabled_ignores_marks() {
        let mut c = cfg();
        c.ecn = false;
        let mut p = Pipe::new(c);
        p.open();
        p.send(Side::Opener, 1, 32 * 1024);
        p.run(2000);
        assert_eq!(p.conn.stats.ecn_reductions, 0);
    }

    #[test]
    fn delayed_ack_covers_odd_tail_segment() {
        // A single small message produces one data segment; the delack
        // timer must acknowledge it without any retransmission timeout.
        let mut p = Pipe::new(cfg());
        p.open();
        p.run(50);
        p.send(Side::Opener, 9, 700);
        p.run(500);
        assert_eq!(p.delivered, vec![(Side::Acceptor, MsgId(9))]);
        assert_eq!(p.conn.stats.timeouts, 0);
        assert_eq!(p.conn.stats.segs_retransmitted, 0);
    }

    #[test]
    fn stale_timers_are_ignored() {
        let mut p = Pipe::new(cfg());
        p.open();
        p.send(Side::Opener, 1, 5000);
        p.run(5000);
        let sent = p.conn.stats.segs_sent;
        // Fire ancient timer generations: nothing may happen.
        let mut out = TcpOut::new();
        p.conn.on_rtx_timer(Side::Opener, 0, p.now, &mut out);
        p.conn.on_ack_timer(Side::Acceptor, 0, p.now, &mut out);
        p.conn.on_conn_timer(0, p.now, &mut out);
        assert!(out.segs.is_empty(), "stale timers must be inert");
        p.absorb(out);
        assert_eq!(p.conn.stats.segs_sent, sent);
    }

    #[test]
    fn prior_generation_timers_are_inert_after_bump() {
        // The EventHeap wheel cancels a superseded arm while it is still
        // wheel-resident, but an arm that already cascaded into the heap
        // fires dead carrying its old generation — exactly one behind
        // the current one. Every handler must treat that immediately
        // prior generation as inert, same as an ancient one: the gen
        // check, not the cancellation, is the correctness boundary.
        let mut p = Pipe::new(cfg());
        p.open();
        p.send(Side::Opener, 1, 20_000);
        p.run(10_000);
        assert!(p.conn.is_established());
        let rtx_gen = p.conn.ends[0].rtx_gen;
        let delack_gen = p.conn.ends[1].delack_gen;
        let conn_gen = p.conn.conn_gen;
        assert!(rtx_gen > 0, "transfer must have armed RTO at least once");
        assert!(
            delack_gen > 0,
            "transfer must have armed delack at least once"
        );
        let (sent, retx, timeouts) = (
            p.conn.stats.segs_sent,
            p.conn.stats.segs_retransmitted,
            p.conn.stats.timeouts,
        );
        let mut out = TcpOut::new();
        // RTO and delack one generation behind the latest bump, plus the
        // SYN-retransmit timer firing after establishment (its gen is
        // still current — the `established` check must gate it).
        p.conn
            .on_rtx_timer(Side::Opener, rtx_gen - 1, p.now, &mut out);
        p.conn
            .on_ack_timer(Side::Acceptor, delack_gen - 1, p.now, &mut out);
        p.conn.on_conn_timer(conn_gen, p.now, &mut out);
        assert!(out.segs.is_empty(), "gen-1 timers must emit nothing");
        assert!(out.timers.is_empty(), "gen-1 timers must not re-arm");
        assert_eq!(p.conn.stats.segs_sent, sent);
        assert_eq!(p.conn.stats.segs_retransmitted, retx);
        assert_eq!(p.conn.stats.timeouts, timeouts);
    }

    #[test]
    fn duplicate_delivery_of_segment_is_harmless() {
        let mut p = Pipe::new(cfg());
        p.open();
        p.run(50);
        p.send(Side::Opener, 1, 1000);
        // Duplicate every queued deliver event once.
        let dups: Vec<(SimTime, PipeEv)> = p
            .queue
            .iter()
            .filter_map(|(t, ev)| match ev {
                PipeEv::Deliver(s, seg) => Some((*t, PipeEv::Deliver(*s, seg.clone()))),
                _ => None,
            })
            .collect();
        p.queue.extend(dups);
        p.run(5000);
        assert_eq!(
            p.delivered,
            vec![(Side::Acceptor, MsgId(1))],
            "exactly once"
        );
    }

    #[test]
    fn syn_loss_retries_until_established() {
        let mut p = Pipe::new(cfg());
        // Drop the first SYN by clearing the queue after open.
        p.open();
        p.queue.retain(|(_, ev)| matches!(ev, PipeEv::Timer(..)));
        p.run(5_000);
        assert!(p.established, "SYN retransmission must establish");
    }
}
