//! Measurement primitives with warm-up support.
//!
//! Every figure in the paper is an average over the post-warm-up window of
//! a run, so all collectors support `reset()` — the experiment harness
//! resets them once the cluster reaches steady state and reads them at the
//! end of the run.

use crate::time::{Duration, SimTime};

/// A monotone event counter.
#[derive(Debug, Default, Clone)]
pub struct Counter {
    n: u64,
}

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn inc(&mut self) {
        self.n += 1;
    }

    #[inline]
    pub fn add(&mut self, k: u64) {
        self.n += k;
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn reset(&mut self) {
        self.n = 0;
    }
}

/// Sample tally: running mean/variance (Welford) plus min/max.
#[derive(Debug, Default, Clone)]
pub struct Tally {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Tally {
    pub fn new() -> Self {
        Tally {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            ..Default::default()
        }
    }

    pub fn record(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Fold another tally into this one — the parallel Welford combine.
    /// The result holds the same moments one tally would after recording
    /// both sample streams (up to floating-point association order).
    pub fn merge(&mut self, other: &Tally) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let (na, nb) = (self.n as f64, other.n as f64);
        let delta = other.mean - self.mean;
        self.mean += delta * nb / (na + nb);
        self.m2 += other.m2 + delta * delta * na * nb / (na + nb);
        self.n += other.n;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Record a duration in seconds.
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_secs_f64());
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    pub fn reset(&mut self) {
        *self = Tally::new();
    }
}

/// Time-weighted average of a piecewise-constant quantity (queue lengths,
/// active thread counts, utilization levels).
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    value: f64,
    last_change: SimTime,
    weighted_sum: f64,
    window_start: SimTime,
    max: f64,
}

impl TimeWeighted {
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeighted {
            value: initial,
            last_change: start,
            weighted_sum: 0.0,
            window_start: start,
            max: initial,
        }
    }

    /// Record that the quantity changed to `value` at time `now`.
    pub fn set(&mut self, now: SimTime, value: f64) {
        let dt = now.since(self.last_change).as_secs_f64();
        self.weighted_sum += self.value * dt;
        self.value = value;
        self.last_change = now;
        self.max = self.max.max(value);
    }

    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    pub fn current(&self) -> f64 {
        self.value
    }

    pub fn max(&self) -> f64 {
        self.max
    }

    /// Time-weighted mean over `[window_start, now]`.
    pub fn mean(&self, now: SimTime) -> f64 {
        let dt = now.since(self.last_change).as_secs_f64();
        let total = now.since(self.window_start).as_secs_f64();
        if total <= 0.0 {
            self.value
        } else {
            (self.weighted_sum + self.value * dt) / total
        }
    }

    /// Restart the measurement window at `now`, keeping the current value.
    pub fn reset(&mut self, now: SimTime) {
        self.weighted_sum = 0.0;
        self.last_change = now;
        self.window_start = now;
        self.max = self.value;
    }
}

/// Fixed-bucket histogram over a linear range, with saturating edge buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    n: u64,
}

impl Histogram {
    pub fn new(lo: f64, hi: f64, nbuckets: usize) -> Self {
        assert!(hi > lo && nbuckets > 0);
        Histogram {
            lo,
            hi,
            buckets: vec![0; nbuckets],
            n: 0,
        }
    }

    pub fn record(&mut self, x: f64) {
        let k = self.buckets.len();
        let idx = if x <= self.lo {
            0
        } else if x >= self.hi {
            k - 1
        } else {
            (((x - self.lo) / (self.hi - self.lo)) * k as f64) as usize
        };
        self.buckets[idx.min(k - 1)] += 1;
        self.n += 1;
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Approximate quantile (0..=1) using bucket midpoints.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.n as f64).ceil() as u64;
        let mut seen = 0;
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target.max(1) {
                return self.lo + (i as f64 + 0.5) * width;
            }
        }
        self.hi
    }

    pub fn reset(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.n = 0;
    }
}

/// Fixed-bucket histogram with *logarithmically* spaced buckets.
///
/// Latency distributions span orders of magnitude; a linear histogram
/// either wastes resolution on the tail or loses it at the head. Log
/// buckets give constant *relative* error everywhere: with `b` buckets
/// spanning `[lo, hi)` each bucket covers a factor of `(hi/lo)^(1/b)`,
/// so quantile estimates are within that factor of the true value.
/// Out-of-range samples saturate into the edge buckets (their count is
/// still exact; only their position is clamped).
///
/// Two histograms with identical shape can be [`merged`](Self::merge),
/// which is exact: the merged quantiles are those of the combined
/// sample stream. This is what lets per-node or per-run collectors be
/// combined without keeping raw samples.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    lo: f64,
    /// Natural log of the per-bucket growth factor.
    ln_ratio: f64,
    buckets: Vec<u64>,
    n: u64,
    sum: f64,
}

impl LogHistogram {
    /// Buckets geometrically spanning `[lo, hi)`; both bounds must be
    /// positive with `hi > lo`.
    pub fn new(lo: f64, hi: f64, nbuckets: usize) -> Self {
        assert!(lo > 0.0 && hi > lo && nbuckets > 0);
        LogHistogram {
            lo,
            ln_ratio: (hi / lo).ln() / nbuckets as f64,
            buckets: vec![0; nbuckets],
            n: 0,
            sum: 0.0,
        }
    }

    pub fn record(&mut self, x: f64) {
        let k = self.buckets.len();
        let idx = if x <= self.lo {
            0
        } else {
            let mut i = (((x / self.lo).ln() / self.ln_ratio) as usize).min(k - 1);
            // `ln` rounding can land a sample sitting exactly on a
            // bucket edge one bucket away from its half-open
            // [edge(i), edge(i+1)) home; nudge it back so containment
            // is exact. At most one step is ever needed.
            if x < self.edge(i) {
                i = i.saturating_sub(1);
            } else if i + 1 < k && x >= self.edge(i + 1) {
                i += 1;
            }
            i
        };
        self.buckets[idx] += 1;
        self.n += 1;
        self.sum += x;
    }

    /// Record a duration in seconds.
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_secs_f64());
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Lower edge of bucket `i`.
    pub fn edge(&self, i: usize) -> f64 {
        self.lo * (self.ln_ratio * i as f64).exp()
    }

    /// Quantile estimate (0..=1): the geometric midpoint of the bucket
    /// containing the q-th sample.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.n as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return self.lo * (self.ln_ratio * (i as f64 + 0.5)).exp();
            }
        }
        self.edge(self.buckets.len())
    }

    /// Merge another histogram of identical shape into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(self.buckets.len(), other.buckets.len(), "bucket count");
        assert!(
            (self.lo - other.lo).abs() < 1e-12 && (self.ln_ratio - other.ln_ratio).abs() < 1e-15,
            "histogram shapes differ"
        );
        for (a, &b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.n += other.n;
        self.sum += other.sum;
    }

    pub fn reset(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.n = 0;
        self.sum = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.count(), 5);
        c.reset();
        assert_eq!(c.count(), 0);
    }

    #[test]
    fn tally_mean_and_variance() {
        let mut t = Tally::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            t.record(x);
        }
        assert!((t.mean() - 5.0).abs() < 1e-12);
        assert!((t.variance() - 32.0 / 7.0).abs() < 1e-9);
        assert_eq!(t.min(), 2.0);
        assert_eq!(t.max(), 9.0);
        assert_eq!(t.count(), 8);
    }

    #[test]
    fn tally_empty_is_zero() {
        let t = Tally::new();
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.min(), 0.0);
        assert_eq!(t.max(), 0.0);
    }

    #[test]
    fn tally_merge_matches_single_stream() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0, 1.5, 11.25];
        let mut whole = Tally::new();
        for &x in &xs {
            whole.record(x);
        }
        let (left, right) = xs.split_at(4);
        let mut a = Tally::new();
        let mut b = Tally::new();
        left.iter().for_each(|&x| a.record(x));
        right.iter().for_each(|&x| b.record(x));
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        assert!((a.sum() - whole.sum()).abs() < 1e-12);
        // Merging an empty tally is the identity in both directions.
        let before = a.clone();
        a.merge(&Tally::new());
        assert_eq!(a.count(), before.count());
        let mut empty = Tally::new();
        empty.merge(&before);
        assert_eq!(empty.count(), before.count());
        assert!((empty.mean() - before.mean()).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_mean() {
        let mut g = TimeWeighted::new(SimTime(0), 0.0);
        g.set(SimTime(1_000_000_000), 10.0); // 0 for 1s
        g.set(SimTime(3_000_000_000), 0.0); // 10 for 2s
                                            // mean over [0, 4s] = (0*1 + 10*2 + 0*1)/4 = 5
        assert!((g.mean(SimTime(4_000_000_000)) - 5.0).abs() < 1e-9);
        assert_eq!(g.max(), 10.0);
    }

    #[test]
    fn time_weighted_reset_restarts_window() {
        let mut g = TimeWeighted::new(SimTime(0), 4.0);
        g.reset(SimTime(2_000_000_000));
        assert!((g.mean(SimTime(3_000_000_000)) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.1);
        }
        let med = h.quantile(0.5);
        assert!((med - 50.0).abs() < 2.0, "median={med}");
        assert!(h.quantile(1.0) > 95.0);
    }

    #[test]
    fn histogram_saturates_at_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(-5.0);
        h.record(50.0);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[9], 1);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn log_histogram_quantile_has_constant_relative_error() {
        // 1 µs .. 100 s in 600 buckets → each bucket spans a factor of
        // 10^(8/600) ≈ 1.032, so quantiles are within ~3.2%.
        let mut h = LogHistogram::new(1e-6, 100.0, 600);
        let mut x = 1e-5;
        let mut values = Vec::new();
        while x < 50.0 {
            h.record(x);
            values.push(x);
            x *= 1.01;
        }
        for q in [0.1, 0.5, 0.95, 0.99] {
            let est = h.quantile(q);
            let idx = ((q * values.len() as f64).ceil() as usize).max(1) - 1;
            let truth = values[idx];
            assert!(
                (est / truth).ln().abs() < 0.04,
                "q={q}: est {est} vs {truth}"
            );
        }
    }

    #[test]
    fn log_histogram_saturates_and_counts() {
        let mut h = LogHistogram::new(1e-3, 10.0, 40);
        h.record(1e-9); // below range → first bucket
        h.record(1e9); // above range → last bucket
        h.record(0.1);
        assert_eq!(h.count(), 3);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(*h.buckets().last().unwrap(), 1);
        // Edges are geometric: edge(i+1)/edge(i) constant.
        let r0 = h.edge(1) / h.edge(0);
        let r1 = h.edge(31) / h.edge(30);
        assert!((r0 - r1).abs() < 1e-12);
    }

    #[test]
    fn log_histogram_merge_is_exact() {
        let mut a = LogHistogram::new(1e-4, 10.0, 200);
        let mut b = LogHistogram::new(1e-4, 10.0, 200);
        let mut all = LogHistogram::new(1e-4, 10.0, 200);
        for i in 1..500 {
            let x = i as f64 * 1e-3;
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            all.record(x);
        }
        a.merge(&b);
        assert_eq!(a, all);
        for q in [0.25, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
    }

    #[test]
    fn log_histogram_reset_clears() {
        let mut h = LogHistogram::new(0.1, 10.0, 10);
        h.record(1.0);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    // ------------------------------------------------------------------
    // Percentile property suite: LogHistogram vs. a brute-force oracle
    // ------------------------------------------------------------------

    /// The empirical quantile `LogHistogram::quantile` approximates:
    /// the smallest sample `v` with `#(samples <= v) >= ceil(q*n)`.
    fn oracle(sorted: &[f64], q: f64) -> f64 {
        let n = sorted.len() as f64;
        let target = ((q.clamp(0.0, 1.0) * n).ceil() as usize).max(1);
        sorted[target - 1]
    }

    /// The containment bucket of `x`: the half-open [edge(i), edge(i+1))
    /// cell, with out-of-range samples clamped to the edge cells. This
    /// is the *specification* `record` must satisfy; it deliberately
    /// avoids the ln-based formula under test.
    fn spec_bucket(h: &LogHistogram, x: f64) -> usize {
        let k = h.buckets().len();
        if x < h.edge(1) {
            return 0;
        }
        for i in 1..k {
            if x < h.edge(i + 1) {
                return i;
            }
        }
        k - 1
    }

    fn midpoint(h: &LogHistogram, i: usize) -> f64 {
        // Reconstructed from the public edges, so it matches the
        // internal midpoint only to within a few ulps.
        h.edge(0) * ((h.edge(1) / h.edge(0)).ln() * (i as f64 + 0.5)).exp()
    }

    /// Relative-tolerance equality for reconstructed midpoints.
    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-12 * b.abs().max(a.abs())
    }

    #[test]
    fn log_histogram_record_matches_containment_spec() {
        // Log-uniform samples spanning below lo to above hi, checked
        // one at a time against the specification bucket.
        let mut rng = crate::SimRng::new(0xD15EA5E);
        for _ in 0..5000 {
            let mut h = LogHistogram::new(1e-3, 10.0, 60);
            // 1e-4 .. 1e3: one decade below lo, two above hi.
            let x = 1e-4 * 10f64.powf(rng.unit() * 7.0);
            h.record(x);
            let got = h.buckets().iter().position(|&b| b > 0).unwrap();
            assert_eq!(
                got,
                spec_bucket(&h, x),
                "sample {x} landed in bucket {got}, spec says {}",
                spec_bucket(&h, x)
            );
        }
    }

    #[test]
    fn log_histogram_exact_bin_boundaries_land_in_their_bin() {
        // edge(i) opens bucket i: [edge(i), edge(i+1)). The ln-based
        // index computation must not drop boundary values one bucket
        // low (the classic float off-by-one this suite pins).
        let h0 = LogHistogram::new(1e-3, 10.0, 60);
        for i in 0..60 {
            let mut h = LogHistogram::new(1e-3, 10.0, 60);
            let x = h0.edge(i);
            h.record(x);
            assert_eq!(
                h.buckets()[i],
                1,
                "edge({i}) = {x} did not land in bucket {i}"
            );
        }
    }

    #[test]
    fn log_histogram_quantile_matches_oracle_bucket() {
        // Against a sorted-vec oracle: the estimate must be exactly the
        // geometric midpoint of the bucket containing the oracle
        // sample, and within one bucket ratio of the oracle value.
        let mut rng = crate::SimRng::new(42);
        let mut h = LogHistogram::new(1e-3, 10.0, 60);
        let mut samples = Vec::new();
        for _ in 0..4096 {
            let x = 1e-4 * 10f64.powf(rng.unit() * 6.0);
            h.record(x);
            samples.push(x);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let ratio = (10.0f64 / 1e-3).powf(1.0 / 60.0);
        for q in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let o = oracle(&samples, q);
            let est = h.quantile(q);
            let bucket = spec_bucket(&h, o);
            assert!(
                close(est, midpoint(&h, bucket)),
                "q={q}: estimate {est} is not the midpoint of the oracle's bucket {bucket}"
            );
            // In-range oracle values bound the relative error by one
            // bucket ratio; clamped ones saturate by design.
            if o > 1e-3 && o < 10.0 {
                assert!(
                    est / o < ratio && o / est < ratio,
                    "q={q}: estimate {est} more than one bucket from oracle {o}"
                );
            }
        }
    }

    #[test]
    fn log_histogram_at_or_below_first_bin_saturates_low() {
        let mut h = LogHistogram::new(1e-3, 10.0, 60);
        h.record(1e-3); // exactly lo
        h.record(1e-7); // far below
        h.record(0.0); // zero is "at or below" too
        assert_eq!(h.buckets()[0], 3);
        assert_eq!(h.count(), 3);
        // All mass in bucket 0: every quantile is its midpoint.
        assert!(close(h.quantile(0.0), midpoint(&h, 0)));
        assert!(close(h.quantile(1.0), midpoint(&h, 0)));
    }

    #[test]
    fn log_histogram_above_last_bin_saturates_high() {
        let mut h = LogHistogram::new(1e-3, 10.0, 60);
        h.record(10.0); // exactly hi (outside the half-open range)
        h.record(1e6); // far above
        assert_eq!(h.buckets()[59], 2);
        // Saturated estimates stay inside the configured range.
        let est = h.quantile(0.5);
        assert!(close(est, midpoint(&h, 59)));
        assert!(est < 10.0);
    }

    #[test]
    fn log_histogram_quantile_is_monotone_in_q() {
        let mut rng = crate::SimRng::new(7);
        let mut h = LogHistogram::new(1e-4, 100.0, 600);
        for _ in 0..1000 {
            h.record(1e-4 * 10f64.powf(rng.unit() * 6.0));
        }
        let mut last = 0.0;
        for i in 0..=100 {
            let est = h.quantile(i as f64 / 100.0);
            assert!(
                est >= last,
                "quantile not monotone at q={}",
                i as f64 / 100.0
            );
            last = est;
        }
    }

    #[test]
    fn log_histogram_merge_equals_combined_stream() {
        let mut rng = crate::SimRng::new(99);
        let mut a = LogHistogram::new(1e-3, 10.0, 60);
        let mut b = LogHistogram::new(1e-3, 10.0, 60);
        let mut all = LogHistogram::new(1e-3, 10.0, 60);
        for i in 0..2000 {
            let x = 1e-3 * 10f64.powf(rng.unit() * 4.0);
            if i % 2 == 0 {
                a.record(x)
            } else {
                b.record(x)
            }
            all.record(x);
        }
        a.merge(&b);
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q).to_bits(), all.quantile(q).to_bits());
        }
        assert_eq!(a.count(), all.count());
    }

    #[test]
    fn linear_histogram_quantile_tracks_oracle_bucket() {
        let mut rng = crate::SimRng::new(3);
        let mut h = Histogram::new(0.0, 100.0, 200);
        let mut samples = Vec::new();
        for _ in 0..2048 {
            let x = rng.unit() * 120.0 - 10.0; // spills past both edges
            h.record(x);
            samples.push(x);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.01, 0.25, 0.5, 0.9, 0.99] {
            let o = oracle(&samples, q);
            let est = h.quantile(q);
            if o > 0.5 && o < 99.5 {
                // Within one linear bucket (0.5) of the oracle.
                assert!(
                    (est - o).abs() <= 0.5 + 1e-9,
                    "q={q}: linear estimate {est} vs oracle {o}"
                );
            }
        }
    }
}
