//! Lowering a parsed [`Scenario`] onto validated [`ClusterConfig`]s.
//!
//! Scalar entries are applied to a base config; multi-valued entries
//! become sweep axes expanded as a cartesian product (first axis
//! outermost, matching the loop nesting of every hardcoded figure).
//! Every grid point passes [`ClusterConfig::validate`] before anything
//! runs, so a bad sweep value fails with the point's label attached
//! instead of panicking mid-sweep.

use crate::ast::{apply, Entry, Scenario, SweepSpec, Value};
use dclue_cluster::ClusterConfig;

/// One runnable grid point.
#[derive(Clone, Debug)]
pub struct Point {
    /// `key=value` pairs of the axis coordinates, in axis order.
    pub coords: Vec<(&'static str, String)>,
    pub cfg: ClusterConfig,
}

impl Point {
    /// Human label: `nodes=8 affinity=0.5` (empty for a single point).
    pub fn label(&self) -> String {
        self.coords
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// A compiled, validated experiment plan.
#[derive(Clone, Debug)]
pub struct Plan {
    pub scenario: Scenario,
    /// The base config with every scalar entry applied (knee mode runs
    /// this at each probed `nodes` value).
    pub base: ClusterConfig,
    /// Grid points in run order (empty for a knee sweep).
    pub points: Vec<Point>,
    /// Seed count from `[engine] seeds` (default 1).
    pub seeds: u64,
    /// Worker count from `[engine] jobs`; `None` = harness decides.
    pub jobs: Option<usize>,
}

/// Compile a scenario. Errors are already-formatted human messages
/// (the scenario file has been parsed, so there are no line numbers —
/// failures here are semantic, e.g. a grid point a figure-style sweep
/// would also have rejected).
pub fn compile(scenario: &Scenario) -> Result<Plan, String> {
    let mut base = ClusterConfig::default();
    let mut seeds = 1u64;
    let mut jobs = None;

    for e in scenario.entries.iter().filter(|e| !e.is_axis()) {
        match (e.key, &e.values[0]) {
            ("seeds", Value::U64(s)) => seeds = (*s).max(1),
            ("jobs", Value::U64(j)) => jobs = Some((*j).max(1) as usize),
            (key, v) => apply(&mut base, key, v),
        }
    }
    for f in &scenario.faults {
        base.fault_plan = f.extend(std::mem::take(&mut base.fault_plan));
    }

    let axes: Vec<&Entry> = scenario.axes().collect();
    let points = match &scenario.sweep {
        SweepSpec::Knee(_) => Vec::new(),
        SweepSpec::Grid => {
            let mut pts = vec![Point {
                coords: Vec::new(),
                cfg: base.clone(),
            }];
            for axis in &axes {
                let mut next = Vec::with_capacity(pts.len() * axis.values.len());
                for p in &pts {
                    for v in &axis.values {
                        let mut cfg = p.cfg.clone();
                        apply(&mut cfg, axis.key, v);
                        let mut coords = p.coords.clone();
                        coords.push((axis.key, v.to_string()));
                        next.push(Point { coords, cfg });
                    }
                }
                pts = next;
            }
            pts
        }
    };

    // Validate everything up front, with the offending point named.
    match &scenario.sweep {
        SweepSpec::Grid => {
            for p in &points {
                p.cfg.validate().map_err(|e| {
                    let label = p.label();
                    if label.is_empty() {
                        format!("scenario '{}': {e}", scenario.name)
                    } else {
                        format!("scenario '{}', point {label}: {e}", scenario.name)
                    }
                })?;
            }
        }
        SweepSpec::Knee(k) => {
            for n in [k.min, k.max] {
                let cfg = cfg_at_nodes(&base, n);
                cfg.validate().map_err(|e| {
                    format!("scenario '{}', knee probe nodes={n}: {e}", scenario.name)
                })?;
            }
        }
    }

    Ok(Plan {
        scenario: scenario.clone(),
        base,
        points,
        seeds,
        jobs,
    })
}

/// The base config probed at a given cluster size (knee mode). The
/// knee search owns the nodes axis, so the windowed group count
/// follows it down: a probe smaller than `intra_jobs` runs with one
/// group per node rather than failing validation mid-search.
pub fn cfg_at_nodes(base: &ClusterConfig, nodes: u32) -> ClusterConfig {
    let mut cfg = base.clone();
    cfg.nodes = nodes;
    cfg.intra_jobs = cfg.intra_jobs.min(nodes);
    cfg
}
