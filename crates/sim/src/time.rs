//! Simulation time.
//!
//! Time is kept in integer nanoseconds. At the paper's 100x scale-down the
//! slowest clock in the system is 1.33 MHz (memory channel) and the fastest
//! is 32 MHz (CPU), i.e. one CPU cycle is ~31 ns — comfortably representable.
//! A `u64` nanosecond clock overflows after ~584 simulated years.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute simulation timestamp in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl SimTime {
    /// Simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Nanoseconds since simulation start.
    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Time as fractional seconds (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    #[inline]
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    pub const ZERO: Duration = Duration(0);

    /// Build from integer nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Duration {
        Duration(ns)
    }

    /// Build from integer microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Duration {
        Duration(us * 1_000)
    }

    /// Build from integer milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Duration {
        Duration(ms * 1_000_000)
    }

    /// Build from integer seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Duration {
        Duration(s * 1_000_000_000)
    }

    /// Build from fractional seconds, rounding to the nearest nanosecond.
    /// Negative or non-finite inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Duration {
        if s.is_finite() && s > 0.0 {
            Duration((s * 1e9).round() as u64)
        } else {
            Duration(0)
        }
    }

    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating multiply by an integer factor.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> Duration {
        Duration(self.0.saturating_mul(k))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<Duration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: Duration) {
        self.0 = self.0.saturating_add(d.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: SimTime) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, k: u64) -> Duration {
        Duration(self.0.saturating_mul(k))
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, k: u64) -> Duration {
        Duration(self.0 / k.max(1))
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_duration_to_time() {
        let t = SimTime::ZERO + Duration::from_micros(3);
        assert_eq!(t.nanos(), 3_000);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime(100);
        let b = SimTime(50);
        assert_eq!(b.since(a), Duration::ZERO);
        assert_eq!(a.since(b), Duration(50));
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(Duration::from_secs_f64(1e-9).nanos(), 1);
        assert_eq!(Duration::from_secs_f64(-4.0).nanos(), 0);
        assert_eq!(Duration::from_secs_f64(f64::NAN).nanos(), 0);
        assert_eq!(Duration::from_secs_f64(0.5).nanos(), 500_000_000);
    }

    #[test]
    fn duration_arithmetic_saturates() {
        let d = Duration(u64::MAX);
        assert_eq!((d + Duration(1)).nanos(), u64::MAX);
        assert_eq!((Duration(3) - Duration(5)).nanos(), 0);
        assert_eq!((d * 2).nanos(), u64::MAX);
    }

    #[test]
    fn div_by_zero_is_safe() {
        assert_eq!((Duration(10) / 0).nanos(), 10);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime(1_500_000_000)), "1.500000s");
        assert_eq!(format!("{:?}", Duration(2_000_000)), "2.000ms");
        assert_eq!(format!("{:?}", Duration(999)), "999ns");
    }
}
