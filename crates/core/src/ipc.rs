//! The IPC vocabulary: every message type the cluster exchanges over its
//! static node-to-node TCP connections, with wire sizes.
//!
//! Per the paper, each node pair keeps **two** connections — one for IPC
//! (control + cache-fusion data) and one for iSCSI storage traffic — so
//! QoS studies can treat them separately. Control messages are ~250 B;
//! data messages carry an 8 KB block plus versioning overhead.

use dclue_db::lock::ResourceId;
use dclue_db::PageKey;
use dclue_storage::iscsi;

/// Wire size of a control message.
pub const CTL_BYTES: u64 = 250;
/// Wire size of a block-transfer data message (8 KB block + headers +
/// versioning metadata, "the larger part comes because of additional
/// versioning data").
pub const BLOCK_BYTES: u64 = 8192 + 320;
/// Client request / response sizes.
pub const CLIENT_REQ_BYTES: u64 = 300;
pub const CLIENT_RESP_BYTES: u64 = 800;

/// Traffic class of a node-pair connection.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ConnClass {
    /// Cache-fusion control + data.
    Ipc,
    /// iSCSI command/data/status.
    Storage,
}

/// One cluster IPC message.
#[derive(Clone, Debug, PartialEq)]
pub enum IpcMsg {
    // ---- cache fusion (§2.1's four-step protocol) ----
    /// A -> B (directory): who has `page`?
    BlockReq {
        page: PageKey,
        requester: u32,
        txn: u64,
    },
    /// B -> A: nobody has it; go to disk.
    BlockNeg { page: PageKey, txn: u64 },
    /// B -> C: send `page` to `requester`.
    SupplyReq {
        page: PageKey,
        requester: u32,
        txn: u64,
    },
    /// C -> A: the block itself (data message).
    BlockData { page: PageKey, txn: u64 },
    /// C -> A: supplier no longer holds the block.
    SupplyNeg { page: PageKey, txn: u64 },
    /// A -> B: A now holds the block (directory update).
    AckHolding { page: PageKey, holder: u32 },
    /// A -> B: A evicted the block.
    EvictNotify { page: PageKey, holder: u32 },
    // ---- MVCC read leases (ProtocolKind::MvccReadLease only) ----
    /// A -> H(ome): grant me a read lease on `page` and ship it.
    LeaseReq {
        page: PageKey,
        requester: u32,
        txn: u64,
    },
    /// H -> A: the block, under a read lease (data message).
    LeaseData { page: PageKey, txn: u64 },
    /// H -> A: home's cache no longer holds the block; read it yourself.
    LeaseNeg { page: PageKey, txn: u64 },
    /// A -> H: extend my lease on `page` (buffer still holds the block,
    /// so no data needs to move — only the control round trip).
    LeaseRenew { page: PageKey, requester: u32 },
    /// H -> A: lease extended.
    LeaseAck { page: PageKey },
    // ---- distributed lock management ----
    /// A -> M(aster).
    LockReq {
        txn: u64,
        res: ResourceId,
        queue_if_busy: bool,
    },
    /// M -> A: immediate outcome.
    LockResp {
        txn: u64,
        res: ResourceId,
        outcome: LockWire,
    },
    /// M -> A: a queued request was granted.
    LockGrant { txn: u64, res: ResourceId },
    /// A -> M: release one lock (commit-time; one message per held
    /// resource, as the paper's per-lock "release" messages).
    Release { txn: u64, res: ResourceId },
    /// A -> M: drop everything txn holds or waits on here (abort/retry).
    ReleaseAll { txn: u64 },
    // ---- iSCSI ----
    /// Initiator -> target: read `page` from your disk.
    IscsiRead {
        page: PageKey,
        req: u64,
        requester: u32,
    },
    /// Target -> initiator: the data.
    IscsiData { page: PageKey, req: u64 },
    /// Initiator -> target: write. `page` names a write-back target;
    /// `None` means a shipped log record (centralized logging, Fig 9).
    IscsiWrite {
        page: Option<PageKey>,
        bytes: u64,
        req: u64,
        requester: u32,
    },
    /// Target -> initiator: write complete.
    IscsiWriteAck { req: u64 },
}

/// Wire encoding of a lock outcome.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LockWire {
    Granted,
    Queued,
    Busy,
}

impl IpcMsg {
    /// Bytes this message occupies on the wire (TCP payload).
    pub fn wire_bytes(&self) -> u64 {
        match self {
            IpcMsg::BlockData { .. } | IpcMsg::LeaseData { .. } => BLOCK_BYTES,
            IpcMsg::IscsiData { .. } => 8192 + iscsi::PDU_HEADER_BYTES + iscsi::STATUS_PDU_BYTES,
            IpcMsg::IscsiRead { .. } => iscsi::CMD_PDU_BYTES,
            IpcMsg::IscsiWrite { bytes, .. } => bytes + iscsi::wire_overhead(*bytes, 8192),
            IpcMsg::IscsiWriteAck { .. } => iscsi::STATUS_PDU_BYTES,
            _ => CTL_BYTES,
        }
    }

    /// Control messages are the small protocol messages; data messages
    /// carry blocks (the paper plots the two separately, Figs 2-3).
    pub fn is_data(&self) -> bool {
        self.wire_bytes() >= 4096
    }

    /// True for fusion/lock traffic (rides the IPC connection); false
    /// for iSCSI (rides the storage connection).
    pub fn class(&self) -> ConnClass {
        match self {
            IpcMsg::IscsiRead { .. }
            | IpcMsg::IscsiData { .. }
            | IpcMsg::IscsiWrite { .. }
            | IpcMsg::IscsiWriteAck { .. } => ConnClass::Storage,
            _ => ConnClass::Ipc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dclue_db::Table;

    fn page() -> PageKey {
        PageKey::data(Table::Stock, 7)
    }

    #[test]
    fn control_messages_are_small() {
        let m = IpcMsg::BlockReq {
            page: page(),
            requester: 1,
            txn: 9,
        };
        assert_eq!(m.wire_bytes(), 250);
        assert!(!m.is_data());
        assert_eq!(m.class(), ConnClass::Ipc);
    }

    #[test]
    fn block_data_is_a_data_message() {
        let m = IpcMsg::BlockData {
            page: page(),
            txn: 9,
        };
        assert!(m.wire_bytes() > 8192);
        assert!(m.is_data());
    }

    #[test]
    fn iscsi_rides_storage_connection() {
        let r = IpcMsg::IscsiRead {
            page: page(),
            req: 1,
            requester: 0,
        };
        let d = IpcMsg::IscsiData {
            page: page(),
            req: 1,
        };
        let w = IpcMsg::IscsiWrite {
            page: None,
            bytes: 2048,
            req: 2,
            requester: 0,
        };
        assert_eq!(r.class(), ConnClass::Storage);
        assert_eq!(d.class(), ConnClass::Storage);
        assert_eq!(w.class(), ConnClass::Storage);
        assert!(d.is_data());
        assert!(!r.is_data());
        assert!(w.wire_bytes() > 2048);
    }

    #[test]
    fn lease_messages_split_control_and_data() {
        let d = IpcMsg::LeaseData {
            page: page(),
            txn: 1,
        };
        assert_eq!(d.wire_bytes(), BLOCK_BYTES);
        assert!(d.is_data());
        assert_eq!(d.class(), ConnClass::Ipc);
        for m in [
            IpcMsg::LeaseReq {
                page: page(),
                requester: 1,
                txn: 1,
            },
            IpcMsg::LeaseNeg {
                page: page(),
                txn: 1,
            },
            IpcMsg::LeaseRenew {
                page: page(),
                requester: 1,
            },
            IpcMsg::LeaseAck { page: page() },
        ] {
            assert_eq!(m.wire_bytes(), CTL_BYTES);
            assert!(!m.is_data());
            assert_eq!(m.class(), ConnClass::Ipc);
        }
    }

    #[test]
    fn lock_messages_are_control() {
        let m = IpcMsg::ReleaseAll { txn: 3 };
        assert_eq!(m.wire_bytes(), CTL_BYTES);
        assert_eq!(m.class(), ConnClass::Ipc);
    }
}
