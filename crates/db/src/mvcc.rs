//! Multiversion concurrency control, timestamp flavour.
//!
//! Per the paper: MCC "avoids any read-locks since a transaction can
//! always find the appropriate version of the data to read"; writes still
//! lock. The price is managing versions — extra memory from an overflow
//! area, and when that runs low, unpinned buffer-cache pages are stolen
//! to replenish it. Each row chain tracks minimum, maximum and current
//! version numbers, exactly as described in §2.3.
//!
//! Version payloads are not materialised (the logical "current" row lives
//! in the table store); a version records its commit timestamp and size,
//! which is everything timing and capacity behaviour depend on.

use std::collections::HashMap;

#[derive(Debug)]
struct Chain {
    /// Commit timestamps, oldest first. The last entry is the current
    /// version's timestamp.
    versions: Vec<u64>,
    /// Version number of `versions[0]`.
    min_v: u64,
    row_bytes: u64,
}

impl Chain {
    fn cur_v(&self) -> u64 {
        self.min_v + self.versions.len() as u64 - 1
    }
}

/// How a read resolved.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VersionRead {
    /// Read the current version.
    Current,
    /// Walked `steps` versions back to find a visible one.
    Old { steps: u32 },
    /// No version is visible at the read timestamp (treat as not found —
    /// the row was created after the reader's snapshot).
    Invisible,
}

/// Counters.
#[derive(Debug, Default, Clone)]
pub struct MvccStats {
    pub versions_created: u64,
    pub reads_current: u64,
    pub reads_old: u64,
    pub reads_invisible: u64,
    pub pruned: u64,
    pub steal_requests: u64,
}

/// The cluster-wide version store.
#[derive(Debug)]
pub struct VersionStore {
    chains: HashMap<(u32, u64), Chain>,
    capacity_bytes: u64,
    used_bytes: u64,
    pub stats: MvccStats,
    /// When enabled (partitioned-execution engines), every local write
    /// is also recorded here so the peers holding the other partitions
    /// of the logically-global store can replay it; `None` (the
    /// default) costs nothing.
    repl_log: Option<Vec<(u32, u64, u64)>>,
}

impl VersionStore {
    pub fn new(capacity_bytes: u64) -> Self {
        VersionStore {
            chains: HashMap::new(),
            capacity_bytes,
            used_bytes: 0,
            stats: MvccStats::default(),
            repl_log: None,
        }
    }

    /// Start logging local writes for replication to peer stores.
    pub fn enable_replication(&mut self) {
        self.repl_log = Some(Vec::new());
    }

    /// Drain the pending replication records: `(table, row, row_bytes)`
    /// in write order. Empty when replication is not enabled.
    pub fn take_repl_log(&mut self) -> Vec<(u32, u64, u64)> {
        match &mut self.repl_log {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    /// Replay a peer store's write. Identical to [`Self::write`] except
    /// it is never re-logged for replication (no echo loops); the
    /// caller supplies a timestamp from *this* store's clock domain.
    pub fn apply_replicated(&mut self, table: u32, row: u64, row_bytes: u64, ts: u64) {
        let log = self.repl_log.take();
        self.write(table, row, row_bytes, ts);
        self.repl_log = log;
    }

    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// True when the overflow area is nearly exhausted — the engine
    /// should steal buffer pages (`add_capacity`).
    pub fn pressure(&self) -> bool {
        self.used_bytes * 10 >= self.capacity_bytes * 9
    }

    /// Grow the overflow area with stolen buffer pages.
    pub fn add_capacity(&mut self, bytes: u64) {
        self.capacity_bytes += bytes;
        self.stats.steal_requests += 1;
    }

    /// Record a new version of `(table, row)` committed at `ts`.
    /// Returns true if the store is now under pressure.
    pub fn write(&mut self, table: u32, row: u64, row_bytes: u64, ts: u64) -> bool {
        let chain = self.chains.entry((table, row)).or_insert(Chain {
            versions: Vec::with_capacity(2),
            min_v: 0,
            row_bytes,
        });
        debug_assert!(
            chain.versions.last().is_none_or(|&last| ts >= last),
            "timestamps must be monotone per row"
        );
        chain.versions.push(ts);
        self.used_bytes += row_bytes;
        self.stats.versions_created += 1;
        if let Some(log) = &mut self.repl_log {
            log.push((table, row, row_bytes));
        }
        self.pressure()
    }

    /// Resolve a read of `(table, row)` at snapshot `read_ts`.
    /// Rows that were never written resolve as `Current` (the base
    /// version from database load is visible to everyone).
    pub fn read(&mut self, table: u32, row: u64, read_ts: u64) -> VersionRead {
        let Some(chain) = self.chains.get(&(table, row)) else {
            self.stats.reads_current += 1;
            return VersionRead::Current;
        };
        // Find the newest version with ts <= read_ts.
        let idx = chain.versions.partition_point(|&t| t <= read_ts);
        if idx == chain.versions.len() {
            self.stats.reads_current += 1;
            VersionRead::Current
        } else if idx == 0 {
            // All versions are newer than the snapshot; the base version
            // (pre-first-write) is what the reader sees if the row
            // predates the run, otherwise nothing. We report Old with the
            // full walk; the engine charges the walk and treats the data
            // as the oldest state.
            if chain.min_v == 0 {
                self.stats.reads_old += 1;
                VersionRead::Old {
                    steps: chain.versions.len() as u32,
                }
            } else {
                self.stats.reads_invisible += 1;
                VersionRead::Invisible
            }
        } else {
            let steps = (chain.versions.len() - idx) as u32;
            if steps == 0 {
                self.stats.reads_current += 1;
                VersionRead::Current
            } else {
                self.stats.reads_old += 1;
                VersionRead::Old { steps }
            }
        }
    }

    /// Current version number of a row (diagnostics / tests).
    pub fn current_version(&self, table: u32, row: u64) -> u64 {
        self.chains
            .get(&(table, row))
            .map(|c| c.cur_v())
            .unwrap_or(0)
    }

    /// Drop versions no active transaction can need: everything strictly
    /// older than the newest version with `ts <= watermark`.
    pub fn prune(&mut self, watermark: u64) {
        let mut freed = 0u64;
        self.chains.retain(|_, chain| {
            let keep_from = chain
                .versions
                .partition_point(|&t| t <= watermark)
                .saturating_sub(1);
            if keep_from > 0 {
                freed += keep_from as u64 * chain.row_bytes;
                chain.versions.drain(..keep_from);
                chain.min_v += keep_from as u64;
                self.stats.pruned += keep_from as u64;
            }
            // Single fully-superseded version chains can be dropped
            // entirely once only one old version remains and it is below
            // the watermark — the base row suffices.
            !(chain.versions.len() == 1 && chain.versions[0] <= watermark && {
                freed += chain.row_bytes;
                self.stats.pruned += 1;
                true
            })
        });
        self.used_bytes = self.used_bytes.saturating_sub(freed);
    }

    /// Number of live chains (diagnostics).
    pub fn chains(&self) -> usize {
        self.chains.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_rows_read_current() {
        let mut v = VersionStore::new(1 << 20);
        assert_eq!(v.read(0, 42, 100), VersionRead::Current);
    }

    #[test]
    fn reader_after_write_sees_current() {
        let mut v = VersionStore::new(1 << 20);
        v.write(0, 1, 95, 10);
        assert_eq!(v.read(0, 1, 11), VersionRead::Current);
    }

    #[test]
    fn old_snapshot_walks_back() {
        let mut v = VersionStore::new(1 << 20);
        v.write(0, 1, 95, 10);
        v.write(0, 1, 95, 20);
        v.write(0, 1, 95, 30);
        // Snapshot at 15 sees the ts=10 version: two steps back.
        assert_eq!(v.read(0, 1, 15), VersionRead::Old { steps: 2 });
        // Snapshot at 25: one step back.
        assert_eq!(v.read(0, 1, 25), VersionRead::Old { steps: 1 });
        // Snapshot at 35: current.
        assert_eq!(v.read(0, 1, 35), VersionRead::Current);
    }

    #[test]
    fn snapshot_before_all_writes_sees_base() {
        let mut v = VersionStore::new(1 << 20);
        v.write(0, 1, 95, 10);
        assert_eq!(v.read(0, 1, 5), VersionRead::Old { steps: 1 });
    }

    #[test]
    fn version_numbers_advance() {
        let mut v = VersionStore::new(1 << 20);
        assert_eq!(v.current_version(0, 7), 0);
        v.write(0, 7, 95, 1);
        v.write(0, 7, 95, 2);
        assert_eq!(v.current_version(0, 7), 1);
    }

    #[test]
    fn capacity_pressure_signals() {
        let mut v = VersionStore::new(1000);
        assert!(!v.pressure());
        for ts in 0..9 {
            v.write(0, ts, 100, ts);
        }
        assert!(v.pressure());
        v.add_capacity(8192);
        assert!(!v.pressure());
        assert_eq!(v.stats.steal_requests, 1);
    }

    #[test]
    fn prune_frees_old_versions() {
        let mut v = VersionStore::new(1 << 20);
        for ts in 1..=10 {
            v.write(0, 1, 100, ts);
        }
        let before = v.used_bytes();
        v.prune(8);
        assert!(v.used_bytes() < before);
        // Reads at/above the watermark still resolve.
        assert_eq!(v.read(0, 1, 10), VersionRead::Current);
        assert_eq!(v.read(0, 1, 9), VersionRead::Old { steps: 1 });
    }

    #[test]
    fn prune_drops_fully_stale_chains() {
        let mut v = VersionStore::new(1 << 20);
        v.write(0, 1, 100, 5);
        v.prune(10);
        assert_eq!(v.chains(), 0);
        assert_eq!(v.used_bytes(), 0);
    }

    #[test]
    fn distinct_rows_have_independent_chains() {
        let mut v = VersionStore::new(1 << 20);
        v.write(0, 1, 100, 5);
        v.write(1, 1, 100, 6);
        v.write(0, 2, 100, 7);
        assert_eq!(v.chains(), 3);
        assert_eq!(v.read(0, 2, 3), VersionRead::Old { steps: 1 });
        assert_eq!(v.read(1, 1, 10), VersionRead::Current);
    }
}
