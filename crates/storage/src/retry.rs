//! Fault-tolerance primitives for the iSCSI path: a target-side stall
//! gate and an initiator-side command retry policy.
//!
//! Both are pure state machines so they can be unit-tested without a
//! simulator and reused by any layer that talks to a possibly-stalled
//! target (the cluster engine parks incoming iSCSI commands in a
//! [`StallGate`] during an injected target stall, and redrives
//! timed-out commands on the schedule a [`RetryPolicy`] produces).

use dclue_sim::Duration;

/// Exponential-backoff schedule for retrying a timed-out command.
///
/// Attempt `n` (0-based) times out after `base * 2^n`, capped at `max`.
/// After `max_attempts` timeouts the command is abandoned and the error
/// surfaces to the caller (in the cluster: the transaction aborts and
/// the client retries).
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    pub base: Duration,
    pub max: Duration,
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // A single scaled disk IO is already 0.3-1.5 s (50 ms-1 s seek
        // + 400 ms/rev rotation at 100x scaling), plus elevator queueing
        // under load. Base sits above that so a healthy-but-busy target
        // never trips the timer; the cap keeps dead-target detection
        // within a few fault windows.
        RetryPolicy {
            base: Duration::from_secs(4),
            max: Duration::from_secs(16),
            max_attempts: 6,
        }
    }
}

impl RetryPolicy {
    /// Timeout to arm for attempt `attempt` (0-based), or `None` once
    /// the command is out of attempts.
    pub fn timeout(&self, attempt: u32) -> Option<Duration> {
        if attempt >= self.max_attempts {
            return None;
        }
        let shift = attempt.min(20);
        let nanos = self.base.nanos().saturating_mul(1u64 << shift);
        Some(Duration::from_nanos(nanos).min(self.max))
    }
}

/// Target-side hold queue: while stalled, admitted items are parked
/// instead of processed; resuming releases them in arrival order.
#[derive(Debug)]
pub struct StallGate<T> {
    stalled: bool,
    parked: Vec<T>,
}

impl<T> Default for StallGate<T> {
    fn default() -> Self {
        StallGate {
            stalled: false,
            parked: Vec::new(),
        }
    }
}

impl<T> StallGate<T> {
    pub fn is_stalled(&self) -> bool {
        self.stalled
    }

    pub fn parked(&self) -> usize {
        self.parked.len()
    }

    pub fn stall(&mut self) {
        self.stalled = true;
    }

    /// Offer an item to the gate: `Some(item)` back means "process it
    /// now"; `None` means it was parked for later.
    pub fn admit(&mut self, item: T) -> Option<T> {
        if self.stalled {
            self.parked.push(item);
            None
        } else {
            Some(item)
        }
    }

    /// Clear the stall and hand back everything parked, in order.
    pub fn resume(&mut self) -> Vec<T> {
        self.stalled = false;
        std::mem::take(&mut self.parked)
    }

    /// Drop parked items (used when the stalled node crashes instead of
    /// resuming — the commands die with it).
    pub fn purge(&mut self) -> usize {
        let n = self.parked.len();
        self.parked.clear();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_caps() {
        let p = RetryPolicy {
            base: Duration::from_millis(10),
            max: Duration::from_millis(35),
            max_attempts: 5,
        };
        assert_eq!(p.timeout(0), Some(Duration::from_millis(10)));
        assert_eq!(p.timeout(1), Some(Duration::from_millis(20)));
        assert_eq!(p.timeout(2), Some(Duration::from_millis(35)));
        assert_eq!(p.timeout(3), Some(Duration::from_millis(35)));
        assert_eq!(p.timeout(5), None);
    }

    #[test]
    fn large_attempt_does_not_overflow() {
        let p = RetryPolicy::default();
        // Past max_attempts: None, and the shift is clamped internally.
        assert_eq!(p.timeout(u32::MAX), None);
    }

    #[test]
    fn gate_passes_through_when_healthy() {
        let mut g: StallGate<u32> = StallGate::default();
        assert_eq!(g.admit(1), Some(1));
        assert!(!g.is_stalled());
        assert_eq!(g.parked(), 0);
    }

    #[test]
    fn gate_parks_and_releases_in_order() {
        let mut g: StallGate<u32> = StallGate::default();
        g.stall();
        assert_eq!(g.admit(1), None);
        assert_eq!(g.admit(2), None);
        assert_eq!(g.parked(), 2);
        assert_eq!(g.resume(), vec![1, 2]);
        assert!(!g.is_stalled());
        assert_eq!(g.admit(3), Some(3));
    }

    #[test]
    fn purge_drops_parked_commands() {
        let mut g: StallGate<u32> = StallGate::default();
        g.stall();
        g.admit(1);
        g.admit(2);
        assert_eq!(g.purge(), 2);
        assert_eq!(g.resume(), Vec::<u32>::new());
    }

    // ---- timeout/backoff sequencing under an injected target stall ----

    #[test]
    fn default_policy_sequence_is_pinned() {
        // The cluster engine's dead-target detection horizon is the sum
        // of this schedule; pin it so a config drift shows up as a test
        // failure, not a silently different failover time.
        let p = RetryPolicy::default();
        let want = [4u64, 8, 16, 16, 16, 16];
        for (n, &secs) in want.iter().enumerate() {
            assert_eq!(p.timeout(n as u32), Some(Duration::from_secs(secs)));
        }
        assert_eq!(p.timeout(6), None);
        let horizon: Duration = (0..6).map(|n| p.timeout(n).unwrap()).sum();
        assert_eq!(horizon, Duration::from_secs(76));
    }

    /// Drive one command against a target stalled on `[0, resume_at)`:
    /// the initiator issues attempt `n`, and while the gate is stalled
    /// the command parks and the attempt-`n` timeout eventually fires a
    /// redrive. `Ok((attempt, t))` is the attempt and time at which the
    /// target finally accepted the command; `Err(t)` is the abandonment
    /// time once the policy runs out of attempts.
    fn drive(policy: &RetryPolicy, resume_at: Duration) -> Result<(u32, Duration), Duration> {
        let mut gate: StallGate<u32> = StallGate::default();
        gate.stall();
        let mut t = Duration::ZERO;
        let mut attempt = 0u32;
        loop {
            if t >= resume_at && gate.is_stalled() {
                // The resumed batch holds every redrive parked so far,
                // in arrival (attempt) order.
                let released = gate.resume();
                assert_eq!(released, (0..attempt).collect::<Vec<_>>());
            }
            if let Some(a) = gate.admit(attempt) {
                return Ok((a, t));
            }
            match policy.timeout(attempt) {
                Some(dt) => {
                    t += dt;
                    attempt += 1;
                }
                None => return Err(t),
            }
        }
    }

    #[test]
    fn short_stall_recovers_on_first_redrive() {
        // Target resumes inside the first timeout window: exactly one
        // redrive, accepted at the attempt-0 deadline (4 s).
        let p = RetryPolicy::default();
        assert_eq!(
            drive(&p, Duration::from_secs(3)),
            Ok((1, Duration::from_secs(4)))
        );
    }

    #[test]
    fn mid_schedule_resume_lands_on_the_backoff_grid() {
        // Redrives can only happen at cumulative-timeout instants
        // (4, 12, 28, 44, 60 s with the default policy); a resume at
        // 20 s is therefore observed at the 28 s redrive, attempt 3.
        let p = RetryPolicy::default();
        assert_eq!(
            drive(&p, Duration::from_secs(20)),
            Ok((3, Duration::from_secs(28)))
        );
    }

    #[test]
    fn stall_outlasting_the_schedule_abandons_at_the_horizon() {
        // A stall longer than the whole schedule: all six attempts park
        // and time out, and the command is abandoned at exactly the
        // 76 s detection horizon.
        let p = RetryPolicy::default();
        assert_eq!(
            drive(&p, Duration::from_secs(1_000)),
            Err(Duration::from_secs(76))
        );
    }

    #[test]
    fn resume_exactly_at_a_redrive_instant_accepts_that_redrive() {
        // Boundary case: resume at t == a redrive instant must accept
        // that very redrive (>= comparison), not wait for the next one.
        let p = RetryPolicy::default();
        assert_eq!(
            drive(&p, Duration::from_secs(12)),
            Ok((2, Duration::from_secs(12)))
        );
    }

    #[test]
    fn crash_mid_stall_purges_redrives_but_schedule_runs_on() {
        // The stalled node crashes at 12 s: everything parked dies with
        // it. The initiator-side schedule is independent state and
        // still walks to abandonment; a post-crash restart (fresh gate)
        // accepts the next redrive immediately.
        let p = RetryPolicy::default();
        let mut gate: StallGate<u32> = StallGate::default();
        gate.stall();
        let mut t = Duration::ZERO;
        let mut attempt = 0u32;
        while t < Duration::from_secs(12) {
            assert_eq!(gate.admit(attempt), None);
            t += p.timeout(attempt).unwrap();
            attempt += 1;
        }
        assert_eq!(gate.purge(), 2); // attempts 0 and 1 die with the node
        gate.resume(); // restart: gate comes back healthy and empty
        assert_eq!(gate.parked(), 0);
        assert_eq!(gate.admit(attempt), Some(2));
        assert!(p.timeout(attempt).is_some(), "schedule had attempts left");
    }
}
