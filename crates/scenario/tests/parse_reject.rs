//! One test per grammar rule of the `.dcs` parser, mirroring the
//! one-test-per-rule pattern of `crates/core/tests/config_validate.rs`.
//! Each rejection asserts (a) the 1-based line number points at the
//! offending line and (b) the message names the problem actionably —
//! `figures` prints these verbatim.

use dclue_scenario::parse;

/// Parse expecting failure; return (line, message).
fn err(src: &str) -> (usize, String) {
    match parse(src) {
        Ok(_) => panic!("parser accepted invalid input:\n{src}"),
        Err(e) => (e.line, e.msg),
    }
}

/// Wrap a body in a valid header so only the body can be at fault.
fn with_header(body: &str) -> String {
    format!("scenario = t\n{body}")
}

#[test]
fn rejects_missing_scenario_name() {
    let (_, m) = err("[topology]\nnodes = 4\n");
    assert!(m.contains("scenario = "), "{m}");
}

#[test]
fn rejects_bad_scenario_name_charset() {
    let (l, m) = err("scenario = has spaces\n");
    assert_eq!(l, 1);
    assert!(m.contains("letters"), "{m}");
}

#[test]
fn rejects_header_key_inside_section() {
    let (l, m) = err("scenario = t\n[engine]\ndescription = late\n");
    assert_eq!(l, 3);
    assert!(m.contains("top of the file"), "{m}");
}

#[test]
fn rejects_malformed_section_header() {
    let (l, m) = err(&with_header("[engine\n"));
    assert_eq!(l, 2);
    assert!(m.contains("malformed section header"), "{m}");
}

#[test]
fn rejects_unknown_section() {
    let (l, m) = err(&with_header("[motor]\n"));
    assert_eq!(l, 2);
    assert!(
        m.contains("unknown section") && m.contains("[engine]"),
        "{m}"
    );
}

#[test]
fn rejects_key_before_any_section() {
    let (l, m) = err("scenario = t\nnodes = 4\n");
    assert_eq!(l, 2);
    assert!(m.contains("before any section"), "{m}");
}

#[test]
fn rejects_line_without_equals() {
    let (l, m) = err(&with_header("[engine]\nexact true\n"));
    assert_eq!(l, 3);
    assert!(m.contains("key = value"), "{m}");
}

#[test]
fn rejects_empty_value() {
    let (l, m) = err(&with_header("[engine]\nexact =\n"));
    assert_eq!(l, 3);
    assert!(m.contains("no value"), "{m}");
}

#[test]
fn rejects_duplicate_key() {
    let (l, m) = err(&with_header("[topology]\nnodes = 4\nnodes = 8\n"));
    assert_eq!(l, 4);
    assert!(m.contains("duplicate"), "{m}");
}

#[test]
fn rejects_unknown_key_listing_section_choices() {
    let (l, m) = err(&with_header("[topology]\nnode_count = 4\n"));
    assert_eq!(l, 3);
    assert!(m.contains("unknown key") && m.contains("nodes"), "{m}");
}

#[test]
fn unknown_workload_key_lists_the_client_knobs() {
    // The suggestion list is derived from the KEYS table, so new knobs
    // must show up without anyone editing a hand-maintained string.
    let (_, m) = err(&with_header("[workload]\nclients = 200\n"));
    assert!(
        m.contains("client_model") && m.contains("client_conns_per_node"),
        "{m}"
    );
}

#[test]
fn rejects_key_in_wrong_section_naming_the_right_one() {
    let (l, m) = err(&with_header("[engine]\nnodes = 4\n"));
    assert_eq!(l, 3);
    assert!(m.contains("belongs in [topology]"), "{m}");
}

#[test]
fn rejects_unterminated_list() {
    let (l, m) = err(&with_header("[topology]\nnodes = [2, 4\n"));
    assert_eq!(l, 3);
    assert!(m.contains("']'"), "{m}");
}

#[test]
fn rejects_empty_sweep_list() {
    let (l, m) = err(&with_header("[topology]\nnodes = []\n"));
    assert_eq!(l, 3);
    assert!(m.contains("empty"), "{m}");
}

#[test]
fn rejects_list_on_non_sweepable_key() {
    let (l, m) = err(&with_header("[engine]\nseeds = [1, 2]\n"));
    assert_eq!(l, 3);
    assert!(m.contains("cannot be a sweep axis"), "{m}");
}

#[test]
fn rejects_bad_list_item_naming_the_key() {
    let (l, m) = err(&with_header("[topology]\nnodes = [2, banana]\n"));
    assert_eq!(l, 3);
    assert!(m.contains("in list for 'nodes'"), "{m}");
}

#[test]
fn rejects_non_integer() {
    let (_, m) = err(&with_header("[topology]\nnodes = 2.5\n"));
    assert!(m.contains("not a non-negative integer"), "{m}");
}

#[test]
fn rejects_non_bool() {
    let (_, m) = err(&with_header("[engine]\nexact = yes\n"));
    assert!(m.contains("true or false"), "{m}");
}

#[test]
fn rejects_duration_without_unit() {
    let (_, m) = err(&with_header("[engine]\nwarmup = 40\n"));
    assert!(m.contains("unit suffix"), "{m}");
}

#[test]
fn rejects_unknown_protocol_listing_choices() {
    let (_, m) = err(&with_header("[protocol]\nkind = raft\n"));
    assert!(m.contains("fusion2pl") && m.contains("mvcc-lease"), "{m}");
}

#[test]
fn rejects_unknown_qos_listing_choices() {
    let (_, m) = err(&with_header("[workload]\nqos = fancy\n"));
    assert!(m.contains("best-effort") && m.contains("wfq"), "{m}");
}

#[test]
fn rejects_unclosed_parenthesis() {
    let (_, m) = err(&with_header("[workload]\nqos = wfq(0.3\n"));
    assert!(m.contains("')'"), "{m}");
}

#[test]
fn rejects_unknown_client_model_listing_choices() {
    let (l, m) = err(&with_header("[workload]\nclient_model = pooled\n"));
    assert_eq!(l, 3);
    assert!(
        m.contains("client_model") && m.contains("exact") && m.contains("aggregate"),
        "{m}"
    );
}

#[test]
fn rejects_client_model_as_sweep_axis() {
    let (l, m) = err(&with_header(
        "[workload]\nclient_model = [exact, aggregate]\n",
    ));
    assert_eq!(l, 3);
    assert!(m.contains("cannot be a sweep axis"), "{m}");
}

#[test]
fn rejects_unknown_storage_mode() {
    let (_, m) = err(&with_header("[storage]\nmode = nvme\n"));
    assert!(m.contains("distributed") && m.contains("san"), "{m}");
}

#[test]
fn rejects_bad_policer_spec() {
    let (_, m) = err(&with_header("[workload]\nftp_policer = rate:100\n"));
    assert!(m.contains("burst"), "{m}");
}

#[test]
fn rejects_unknown_fault_verb_listing_choices() {
    let (l, m) = err(&with_header("[fault]\nexplode 1 at=5s for=1s\n"));
    assert_eq!(l, 3);
    assert!(m.contains("link_flap") && m.contains("node_outage"), "{m}");
}

#[test]
fn rejects_fault_missing_target() {
    let (_, m) = err(&with_header("[fault]\nlink_flap at=5s for=1s\n"));
    assert!(m.contains("target"), "{m}");
}

#[test]
fn rejects_fault_bad_link() {
    let (_, m) = err(&with_header("[fault]\nlink_flap wire:0 at=5s for=1s\n"));
    assert!(m.contains("node_uplink"), "{m}");
}

#[test]
fn rejects_fault_missing_required_argument() {
    let (_, m) = err(&with_header("[fault]\nlink_flap node_uplink:0 at=5s\n"));
    assert!(m.contains("'for="), "{m}");
}

#[test]
fn rejects_fault_unknown_argument() {
    let (_, m) = err(&with_header(
        "[fault]\nlink_flap node_uplink:0 at=5s for=1s boom=2\n",
    ));
    assert!(m.contains("unknown argument 'boom'"), "{m}");
}

#[test]
fn rejects_fault_malformed_argument() {
    let (_, m) = err(&with_header("[fault]\nnode_outage 1 at=5s for\n"));
    assert!(m.contains("key=value"), "{m}");
}

#[test]
fn rejects_unknown_sweep_mode() {
    let (_, m) = err(&with_header("[sweep]\nmode = random\n"));
    assert!(m.contains("grid") && m.contains("knee"), "{m}");
}

#[test]
fn rejects_unknown_sweep_key() {
    let (_, m) = err(&with_header("[sweep]\nwidth = 3\n"));
    assert!(m.contains("unknown key") && m.contains("threshold"), "{m}");
}

#[test]
fn rejects_knee_keys_without_knee_mode() {
    let (l, m) = err(&with_header("[sweep]\nmin = 2\n"));
    assert_eq!(l, 3);
    assert!(m.contains("mode = knee"), "{m}");
}

#[test]
fn rejects_knee_on_non_nodes_axis() {
    let (_, m) = err(&with_header(
        "[sweep]\nmode = knee\naxis = affinity\nmin = 2\nmax = 8\n",
    ));
    assert!(m.contains("'nodes' axis only"), "{m}");
}

#[test]
fn rejects_knee_missing_min_or_max() {
    let (_, m) = err(&with_header("[sweep]\nmode = knee\nmax = 8\n"));
    assert!(m.contains("min"), "{m}");
    let (_, m) = err(&with_header("[sweep]\nmode = knee\nmin = 2\n"));
    assert!(m.contains("max"), "{m}");
}

#[test]
fn rejects_knee_bad_range() {
    let (_, m) = err(&with_header("[sweep]\nmode = knee\nmin = 8\nmax = 8\n"));
    assert!(m.contains("min < max"), "{m}");
}

#[test]
fn rejects_knee_bad_step() {
    let (_, m) = err(&with_header(
        "[sweep]\nmode = knee\nmin = 2\nmax = 8\nstep = 12\n",
    ));
    assert!(m.contains("step"), "{m}");
}

#[test]
fn rejects_knee_bad_threshold() {
    let (_, m) = err(&with_header(
        "[sweep]\nmode = knee\nmin = 2\nmax = 8\nthreshold = 0\n",
    ));
    assert!(m.contains("threshold"), "{m}");
}

#[test]
fn rejects_knee_with_explicit_nodes_axis() {
    let (_, m) = err(&with_header(
        "[topology]\nnodes = [2, 4]\n[sweep]\nmode = knee\nmin = 2\nmax = 8\n",
    ));
    assert!(m.contains("owns the nodes axis"), "{m}");
}

#[test]
fn rejects_columns_not_a_list() {
    let (_, m) = err(&with_header("[output]\ncolumns = nodes\n"));
    assert!(m.contains("expects a list"), "{m}");
}

#[test]
fn rejects_unknown_column_listing_choices() {
    let (_, m) = err(&with_header("[output]\ncolumns = [warp_factor]\n"));
    assert!(
        m.contains("unknown column") && m.contains("tpmc_scaled"),
        "{m}"
    );
}

#[test]
fn rejects_empty_columns_list() {
    let (_, m) = err(&with_header("[output]\ncolumns = []\n"));
    assert!(m.contains("empty"), "{m}");
}

#[test]
fn rejects_group_by_unknown_key() {
    let (_, m) = err(&with_header("[output]\ngroup_by = flavor\n"));
    assert!(m.contains("not a known scenario key"), "{m}");
}

#[test]
fn rejects_group_by_on_non_axis() {
    let (l, m) = err(&with_header(
        "[topology]\nnodes = 4\n[output]\ngroup_by = nodes\n",
    ));
    assert_eq!(l, 5);
    assert!(m.contains("sweep axis"), "{m}");
}

#[test]
fn rejects_unknown_output_key() {
    let (_, m) = err(&with_header("[output]\nformat = csv\n"));
    assert!(m.contains("columns, group_by"), "{m}");
}

#[test]
fn rejects_unknown_service_key() {
    let (_, m) = err(&with_header("[service]\nport = 80\n"));
    assert!(m.contains("listen"), "{m}");
}

#[test]
fn rejects_bad_listen_address() {
    let (_, m) = err(&with_header("[service]\nlisten = localhost\n"));
    assert!(m.contains("<ip>:<port>"), "{m}");
}

#[test]
fn error_display_carries_the_line_number() {
    let e = parse("scenario = t\n[engine]\nexact = maybe\n").unwrap_err();
    assert!(e.to_string().starts_with("line 3: "), "{e}");
}

#[test]
fn rejects_intra_jobs_sweep_list() {
    // The windowed group count shapes the engine, not the experiment
    // grid — sweeping it would mix execution strategies in one table.
    let (l, m) = err(&with_header("[engine]\nintra_jobs = [2, 4]\n"));
    assert_eq!(l, 3);
    assert!(m.contains("cannot be a sweep axis"), "{m}");
}

#[test]
fn rejects_intra_jobs_outside_engine_section() {
    let (l, m) = err(&with_header("[topology]\nintra_jobs = 2\n"));
    assert_eq!(l, 3);
    assert!(m.contains("belongs in [engine]"), "{m}");
}

#[test]
fn rejects_non_integer_intra_jobs() {
    let (l, m) = err(&with_header("[engine]\nintra_jobs = fast\n"));
    assert_eq!(l, 3);
    assert!(m.contains("not a non-negative integer"), "{m}");
}

#[test]
fn compile_rejects_intra_jobs_above_nodes() {
    // Parses fine; the config validator catches it at compile() with
    // the scenario name attached.
    let sc = parse("scenario = t\n[engine]\nintra_jobs = 8\n[topology]\nnodes = 4\n").unwrap();
    let e = dclue_scenario::compile(&sc).unwrap_err();
    assert!(e.contains("intra_jobs"), "{e}");
    assert!(e.contains("scenario 't'"), "{e}");
}
