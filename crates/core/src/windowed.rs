//! Conservative time-windowed parallel execution of a *single* run.
//!
//! The serial engine dispatches one global event heap; this module
//! splits the cluster's nodes into `intra_jobs` contiguous *groups*
//! and runs one full [`World`] replica per group on its own thread.
//! Each replica is built with the identical topology, connection table
//! and init-time (prewarm) state as the serial world, but *drives*
//! only the client sessions homed on its own node block — so the
//! per-group event streams partition the serial workload rather than
//! duplicating it. The *workload* RNG streams are re-derived per group
//! after prewarm: if every replica kept the shared seed, the G groups
//! would sample G correlated copies of one random trace, which
//! measurably shrinks the distinct cold-page set the cluster faults in
//! (fewer first-touch disk reads than one world with the same number
//! of independent terminals produces).
//!
//! Execution proceeds in fixed-width windows. Within a window every
//! group processes its own events independently; traffic addressed to
//! a foreign group's node is *ghost-delivered*: it rides the real
//! packet network of the sending world all the way to the local
//! replica of the destination host (competing for the sender's NICs,
//! switches and trunks exactly like serial traffic), and only at
//! delivery is it intercepted and staged for the owning group. At the
//! window barrier one thread merges all staged messages in
//! deterministic `(arrival, source group, sequence)` order and
//! distributes them; each group injects its share no earlier than the
//! *next* window's start, through a per-node downlink FIFO that
//! serializes arrivals at the destination's link rate, then charges
//! the receive path on the owning node's CPU. That clamp is what makes
//! the scheme conservative for any window width: no event is ever
//! scheduled into a window some group has already executed, so repeat
//! runs with the same group count are bit-identical.
//!
//! Client traffic is federated the same way in both directions: a
//! session whose transaction routes to a foreign node keeps a real
//! connection to that node's local replica (handshake and request
//! frames load the home fabric), the executing world opens a *mirror
//! connection* so the response rides its fabric and server uplink, and
//! version-store writes are broadcast at each barrier so every
//! replica of the logically-shared MVCC overflow area converges.
//!
//! The window width defaults to the smallest idle-path latency of a
//! control message between nodes of different groups (at least 1 ms):
//! messages then rarely need clamping, keeping the timing distortion
//! well inside the statistical-equivalence ladder that windowed runs
//! are held to (serial runs with `intra_jobs <= 1` take the untouched
//! exact path and stay bit-identical to the golden captures).
//!
//! Group assignment is *rack-aligned* when the topology allows it
//! (`racks >= groups` with equal-size racks — see
//! [`crate::components::fabric::xg_group_of`]): each group owns whole
//! racks, every cross-group pair is also cross-rack, and the derived
//! window stretches to the larger trunked inter-rack latency. When
//! `intra_jobs` exceeds the rack count (e.g. the paper's one-switch
//! star), assignment falls back to the plain contiguous block
//! partition; the run is still correct, just windowed at the
//! intra-switch latency ([`WindowedStats::rack_aligned`] reports which
//! branch applied).

use crate::components::fabric::XgMsg;
use crate::config::ClusterConfig;
use crate::metrics::Report;
use crate::world::World;
use dclue_sim::par::SpinBarrier;
use dclue_sim::{Duration, SimTime};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Execution telemetry from a windowed run (for the self-benchmark
/// and the `figures` harness; not part of the simulation result).
#[derive(Debug, Clone, Copy)]
pub struct WindowedStats {
    /// Node groups (= worker threads) the run was split into.
    pub groups: u32,
    /// Window width used (configured or auto-derived).
    pub window: Duration,
    /// Barrier rounds executed.
    pub windows: u64,
    /// Cross-group messages exchanged at barriers.
    pub xg_messages: u64,
    /// Events dispatched, summed over every group world.
    pub events_processed: u64,
    /// Events scheduled, summed over every group world.
    pub events_scheduled: u64,
    /// Whether groups were rack-aligned (each group owns whole racks,
    /// so the window derives from the inter-rack trunk latency). False
    /// means the contiguous fallback: more groups than racks — correct
    /// but windowed at the narrower intra-switch latency.
    pub rack_aligned: bool,
}

struct Shared {
    barrier: SpinBarrier,
    /// Per-source-group staging slot for the window's outbox.
    slots: Vec<Mutex<Vec<XgMsg>>>,
    /// Per-destination-group merged messages, in injection order.
    inboxes: Vec<Mutex<Vec<XgMsg>>>,
    /// Worlds that have reached `EndRun`.
    done: AtomicUsize,
    /// Set by the barrier leader once every world is done.
    all_done: AtomicBool,
    rounds: AtomicU64,
    xg_messages: AtomicU64,
}

/// Run one configuration under the windowed engine. Requires
/// `cfg.intra_jobs >= 2` (callers use [`run_one`] to dispatch).
pub fn run_windowed(cfg: &ClusterConfig) -> (Report, WindowedStats) {
    let groups = cfg.intra_jobs;
    assert!(
        groups >= 2 && groups <= cfg.nodes,
        "windowed engine needs 2..=nodes groups (got {groups})"
    );
    let shared = Shared {
        barrier: SpinBarrier::new(groups as usize),
        slots: (0..groups).map(|_| Mutex::new(Vec::new())).collect(),
        inboxes: (0..groups).map(|_| Mutex::new(Vec::new())).collect(),
        done: AtomicUsize::new(0),
        all_done: AtomicBool::new(false),
        rounds: AtomicU64::new(0),
        xg_messages: AtomicU64::new(0),
    };
    // The metrics registry is thread-local: when the caller enabled it
    // (`--metrics`), each worker collects into its own registry and the
    // join below folds every worker's snapshot back into this thread's,
    // so windowed runs report real counters instead of nothing.
    let metrics_on = dclue_trace::ENABLED && dclue_trace::metrics::enabled();
    let mut worlds: Vec<World> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..groups)
            .map(|g| {
                let shared = &shared;
                s.spawn(move || {
                    if metrics_on {
                        dclue_trace::metrics::set_enabled(true);
                    }
                    // Constructed on this thread so the thread-local
                    // invariant checks arm where the events dispatch.
                    let mut w = World::new_group(cfg.clone(), g, groups);
                    // Deterministic, so every thread derives the same
                    // width without coordination.
                    let window = window_width(cfg, &w, groups);
                    let mut limit = SimTime::ZERO + window;
                    let mut counted_done = false;
                    loop {
                        w.run_window(limit);
                        if w.is_done() && !counted_done {
                            counted_done = true;
                            shared.done.fetch_add(1, Ordering::AcqRel);
                        }
                        *shared.slots[g as usize].lock().unwrap() = w.take_xg_outbox();
                        if shared.barrier.wait() {
                            // Leader: merge every group's stage in
                            // deterministic order and distribute.
                            let mut all: Vec<XgMsg> = Vec::new();
                            for slot in &shared.slots {
                                all.append(&mut slot.lock().unwrap());
                            }
                            all.sort_by_key(|m| (m.at, m.src_group, m.seq));
                            shared
                                .xg_messages
                                .fetch_add(all.len() as u64, Ordering::Relaxed);
                            for m in all {
                                let dest = m.dest_group as usize;
                                shared.inboxes[dest].lock().unwrap().push(m);
                            }
                            shared.rounds.fetch_add(1, Ordering::Relaxed);
                            shared.all_done.store(
                                shared.done.load(Ordering::Acquire) == groups as usize,
                                Ordering::Release,
                            );
                        }
                        // Second rendezvous: distribution (and the
                        // all-done verdict) is visible to everyone.
                        shared.barrier.wait();
                        if shared.all_done.load(Ordering::Acquire) {
                            break;
                        }
                        let inbox =
                            std::mem::take(&mut *shared.inboxes[g as usize].lock().unwrap());
                        for m in inbox {
                            // Clamped to the next window's start: the
                            // conservative guarantee for any width.
                            w.inject_xg(limit, m);
                        }
                        limit += window;
                    }
                    let snap = if metrics_on {
                        dclue_trace::metrics::snapshot()
                    } else {
                        Vec::new()
                    };
                    (w, snap)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                let (w, snap) = h.join().expect("windowed group worker panicked");
                dclue_trace::metrics::absorb(snap);
                w
            })
            .collect()
    });

    // Merge on the caller thread: group 0 absorbs every foreign
    // group's counters, timeline and driven nodes, then reports.
    let mut w0 = worlds.remove(0);
    let mut events_processed = w0.events_processed();
    let mut events_scheduled = w0.events_scheduled();
    for w in worlds.iter_mut() {
        events_processed += w.events_processed();
        events_scheduled += w.events_scheduled();
        w0.absorb_group(w);
    }
    let window = window_width(cfg, &w0, groups);
    let rack_aligned = crate::components::fabric::xg_rack_aligned(
        cfg.nodes,
        groups,
        w0.placement().racks,
    );
    let report = w0.into_report();
    let stats = WindowedStats {
        groups,
        window,
        windows: shared.rounds.load(Ordering::Relaxed),
        xg_messages: shared.xg_messages.load(Ordering::Relaxed),
        events_processed,
        events_scheduled,
        rack_aligned,
    };
    (report, stats)
}

/// The window width for a run: the configured override, else the
/// minimum cross-group control-message latency floored at 1 ms (the
/// floor keeps barrier overhead negligible against per-window work;
/// arrival clamping keeps the wider-than-lookahead window safe).
fn window_width(cfg: &ClusterConfig, w: &World, groups: u32) -> Duration {
    if cfg.intra_window > Duration::ZERO {
        cfg.intra_window
    } else {
        w.min_xg_latency(groups).max(Duration::from_millis(1))
    }
}

/// Run a configuration under whichever engine it selects: the
/// untouched serial loop for `intra_jobs <= 1` (bit-identical to
/// every existing capture), the windowed engine otherwise.
pub fn run_one(cfg: ClusterConfig) -> Report {
    if cfg.intra_jobs >= 2 {
        run_windowed(&cfg).0
    } else {
        World::new(cfg).run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClientModel, FabricShape};

    /// The windowed cap was lifted from 256 to 65536 nodes (txn ids now
    /// carry a 16-bit node field): a 512-node group world must validate
    /// and construct cleanly, with the aggregate populations splitting
    /// to exactly the configured terminal count.
    #[test]
    fn group_world_constructs_at_512_nodes() {
        let cfg = ClusterConfig {
            nodes: 512,
            warehouses_per_node: 1,
            clients_per_node: 10,
            client_model: ClientModel::Aggregate,
            intra_jobs: 2,
            ..Default::default()
        };
        cfg.validate().expect("512-node windowed config");
        let w = World::new_group(cfg, 1, 2);
        let pops: u64 = w.agg_counters().iter().map(|&(p, ..)| p).sum();
        assert_eq!(pops, 512 * 10);
        assert_eq!(w.driver_slots(), 0);
    }

    /// Rack-aligned partitioning is what it is *for*: on a fabric with
    /// slow trunks, aligning groups to racks makes every cross-group
    /// pair cross-rack, so the conservative lookahead derives from the
    /// trunked inter-rack latency. With more groups than racks the
    /// contiguous fallback splits racks across groups and the bound
    /// collapses to the intra-switch latency.
    #[test]
    fn rack_alignment_widens_the_conservative_window() {
        let mut cfg = ClusterConfig {
            nodes: 8,
            clients_per_node: 1,
            warehouses_per_node: 1,
            ..Default::default()
        };
        cfg.topology = FabricShape::Hierarchical;
        cfg.nodes_per_edge = 2; // 4 racks
        cfg.agg_switches = 2;
        cfg.extra_trunk_latency = Duration::from_millis(2);
        cfg.validate().expect("valid hierarchical config");
        let w = World::new(cfg.clone());

        // 2 groups over 4 racks: aligned, every cross-group path is
        // trunked and carries the extra 2 ms (twice: up and down).
        let aligned = w.min_xg_latency(2);
        // 8 groups over 4 racks: fallback splits each rack, so some
        // cross-group pair shares an edge switch — no trunk, no 2 ms.
        let fallback = w.min_xg_latency(8);
        assert!(
            aligned >= fallback + Duration::from_millis(2),
            "aligned {aligned:?} vs fallback {fallback:?}"
        );
    }
}
