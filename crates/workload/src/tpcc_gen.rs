//! TPC-C input generation per the specification's random rules, adapted
//! to the scaled database exactly as the paper scales it.

use dclue_db::tpcc::{LineInput, TxnInput, TxnKind};
use dclue_db::TpccScale;
use dclue_sim::SimRng;

/// One business transaction: the sequence of TPC-C transactions a client
/// session runs over a single TCP connection, opening with a new-order
/// and preserving the nominal 43/43/5/5/4 mix in aggregate.
#[derive(Debug)]
pub struct BusinessTxn {
    pub txns: Vec<TxnInput>,
}

/// NURand `A` parameter scaled to the domain. The spec fixes A=1023 for
/// customer ids over 3000 (~range/3) and A=8191 for item ids over 100K
/// (~range/12); we keep those ratios for scaled domains by picking the
/// `2^k - 1` closest to `range / divisor`.
fn nurand_a(range: u64, divisor: u64) -> u64 {
    let target = (range / divisor).max(1) as f64;
    let mut best = 0u64;
    for k in 0..32 {
        let a = (1u64 << k) - 1;
        if best == 0 || ((a as f64 - target).abs() < (best as f64 - target).abs()) {
            best = a;
        }
    }
    best
}

/// Generates TPC-C inputs for one cluster.
pub struct TpccGenerator {
    scale: TpccScale,
    rng: SimRng,
    /// Per-run NURand C constants.
    c_cust: u64,
    c_item: u64,
}

impl TpccGenerator {
    pub fn new(scale: TpccScale, rng: SimRng) -> Self {
        let mut rng = rng;
        let c_cust = rng.uniform(0, 1023);
        let c_item = rng.uniform(0, 8191);
        TpccGenerator {
            scale,
            rng,
            c_cust,
            c_item,
        }
    }

    fn customer(&mut self) -> u32 {
        let n = self.scale.customers_per_district as u64;
        self.rng.nurand(nurand_a(n, 3), 1, n, self.c_cust) as u32
    }

    fn item(&mut self) -> u32 {
        let n = self.scale.items as u64;
        self.rng.nurand(nurand_a(n, 12), 1, n, self.c_item) as u32
    }

    fn other_warehouse(&mut self, w: u32) -> u32 {
        if self.scale.warehouses <= 1 {
            return w;
        }
        loop {
            let o = self.rng.uniform(1, self.scale.warehouses as u64) as u32;
            if o != w {
                return o;
            }
        }
    }

    /// New-order input for home warehouse `w`.
    pub fn new_order(&mut self, w: u32) -> TxnInput {
        let d = self.rng.uniform(1, self.scale.districts_per_wh as u64) as u32;
        let c = self.customer();
        let n_lines = self.rng.uniform(5, 15) as usize;
        let lines = (0..n_lines)
            .map(|_| {
                let item = self.item();
                // Spec: 1% of lines are supplied by a remote warehouse.
                let supply_w = if self.rng.chance(0.01) {
                    self.other_warehouse(w)
                } else {
                    w
                };
                LineInput {
                    item,
                    supply_w,
                    qty: self.rng.uniform(1, 10) as u8,
                }
            })
            .collect();
        TxnInput {
            kind: TxnKind::NewOrder,
            w,
            d,
            c,
            c_w: w,
            c_d: d,
            lines,
            amount: 0,
            rollback: self.rng.chance(0.01),
            threshold: 0,
            by_name: false,
        }
    }

    pub fn payment(&mut self, w: u32) -> TxnInput {
        let d = self.rng.uniform(1, self.scale.districts_per_wh as u64) as u32;
        // Spec: 15% of payments hit a customer of a remote warehouse.
        let (c_w, c_d) = if self.rng.chance(0.15) {
            (
                self.other_warehouse(w),
                self.rng.uniform(1, self.scale.districts_per_wh as u64) as u32,
            )
        } else {
            (w, d)
        };
        TxnInput {
            kind: TxnKind::Payment,
            w,
            d,
            c: self.customer(),
            c_w,
            c_d,
            lines: Vec::new(),
            amount: self.rng.uniform(100, 500_000) as u32,
            rollback: false,
            threshold: 0,
            // Spec clause 2.5.1.2: 60% of payments select by last name.
            by_name: self.rng.chance(0.6),
        }
    }

    pub fn order_status(&mut self, w: u32) -> TxnInput {
        let d = self.rng.uniform(1, self.scale.districts_per_wh as u64) as u32;
        TxnInput {
            kind: TxnKind::OrderStatus,
            w,
            d,
            c: self.customer(),
            c_w: w,
            c_d: d,
            lines: Vec::new(),
            amount: 0,
            rollback: false,
            threshold: 0,
            // Spec clause 2.6.1.2: 60% of status queries by last name.
            by_name: self.rng.chance(0.6),
        }
    }

    pub fn delivery(&mut self, w: u32) -> TxnInput {
        TxnInput {
            kind: TxnKind::Delivery,
            w,
            d: 1,
            c: 1,
            c_w: w,
            c_d: 1,
            lines: Vec::new(),
            amount: 0,
            rollback: false,
            threshold: 0,
            by_name: false,
        }
    }

    pub fn stock_level(&mut self, w: u32) -> TxnInput {
        let d = self.rng.uniform(1, self.scale.districts_per_wh as u64) as u32;
        TxnInput {
            kind: TxnKind::StockLevel,
            w,
            d,
            c: 1,
            c_w: w,
            c_d: d,
            lines: Vec::new(),
            amount: 0,
            rollback: false,
            threshold: self.rng.uniform(10, 20) as u32,
            by_name: false,
        }
    }

    /// A business transaction for home warehouse `w`: always opens with a
    /// new-order and a payment, and appends the rarer transactions with
    /// probabilities that reproduce the 43/43/5/5/4 aggregate mix.
    pub fn business_txn(&mut self, w: u32) -> BusinessTxn {
        dclue_trace::metric_add!("workload.business_txns", 1);
        let mut txns = vec![self.new_order(w), self.payment(w)];
        if self.rng.chance(5.0 / 43.0) {
            txns.push(self.order_status(w));
        }
        if self.rng.chance(5.0 / 43.0) {
            txns.push(self.delivery(w));
        }
        if self.rng.chance(4.0 / 43.0) {
            txns.push(self.stock_level(w));
        }
        BusinessTxn { txns }
    }

    pub fn scale(&self) -> &TpccScale {
        &self.scale
    }
}

/// Affinity routing (§2.2): with probability `affinity` the transaction
/// goes to the node hosting its warehouse, otherwise to a uniformly
/// random node. Warehouses are partitioned in equal contiguous blocks.
pub fn route_node(w: u32, warehouses: u32, nodes: u32, affinity: f64, rng: &mut SimRng) -> u32 {
    let per_node = warehouses.div_ceil(nodes).max(1);
    let home = ((w - 1) / per_node).min(nodes - 1);
    if rng.unit() < affinity {
        home
    } else {
        rng.uniform(0, nodes as u64 - 1) as u32
    }
}

/// Home node of a warehouse under block partitioning.
pub fn home_node(w: u32, warehouses: u32, nodes: u32) -> u32 {
    let per_node = warehouses.div_ceil(nodes).max(1);
    ((w - 1) / per_node).min(nodes - 1)
}

/// The contiguous warehouse block `[w_lo, w_hi]` homed on `node` under
/// block partitioning (the inverse image of [`home_node`]). The last
/// node absorbs the clamped tail. Returns `(1, 0)` — an empty span —
/// for nodes beyond the warehouse count.
pub fn node_warehouse_span(node: u32, nodes: u32, warehouses: u32) -> (u32, u32) {
    let per_node = warehouses.div_ceil(nodes).max(1);
    let w_lo = node * per_node + 1;
    let w_hi = if node == nodes - 1 {
        warehouses
    } else {
        ((node + 1) * per_node).min(warehouses)
    };
    if w_lo > warehouses {
        (1, 0)
    } else {
        (w_lo, w_hi)
    }
}

/// How many of `total_sessions` closed-loop terminals are homed on
/// `node`: the exact count of sessions `i` whose evenly-spread home
/// warehouse `floor(i*W/S) + 1` falls in `node`'s block. Closed form,
/// so a million-terminal population costs nothing to place and every
/// windowed group world agrees without enumerating sessions. The
/// per-node counts telescope to exactly `total_sessions`.
pub fn node_population(node: u32, nodes: u32, warehouses: u32, total_sessions: u64) -> u64 {
    let (w_lo, w_hi) = node_warehouse_span(node, nodes, warehouses);
    if w_lo > w_hi {
        return 0;
    }
    // home_w(i) >= w ⟺ i >= ceil((w-1)*S/W); count the half-open
    // session-index interval for the block (u128: W, S can each be
    // large enough for the product to clear u64).
    let bound = |w: u32| -> u64 {
        let lo = (w as u128 - 1) * total_sessions as u128;
        (lo.div_ceil(warehouses as u128) as u64).min(total_sessions)
    };
    bound(w_hi + 1) - bound(w_lo)
}

/// How many of `total_sessions` terminals are homed on warehouse `w`
/// (1-based) under the same evenly-spread layout as `node_population`.
/// The per-warehouse counts telescope to exactly `total_sessions`, so
/// the aggregate client model can reproduce the exact driver's fixed
/// terminal→warehouse stratification without enumerating sessions.
pub fn warehouse_population(w: u32, warehouses: u32, total_sessions: u64) -> u64 {
    let bound = |w: u32| -> u64 {
        let lo = (w as u128 - 1) * total_sessions as u128;
        (lo.div_ceil(warehouses as u128) as u64).min(total_sessions)
    };
    bound(w + 1) - bound(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dclue_sim::SimRng;

    fn gen() -> TpccGenerator {
        TpccGenerator::new(TpccScale::scaled(40), SimRng::new(7))
    }

    #[test]
    fn new_order_inputs_in_domain() {
        let mut g = gen();
        for _ in 0..200 {
            let t = g.new_order(3);
            assert_eq!(t.w, 3);
            assert!((1..=10).contains(&t.d));
            assert!((1..=300).contains(&t.c));
            assert!((5..=15).contains(&t.lines.len()));
            for l in &t.lines {
                assert!((1..=1000).contains(&l.item));
                assert!((1..=40).contains(&l.supply_w));
                assert!((1..=10).contains(&l.qty));
            }
        }
    }

    #[test]
    fn remote_supply_rate_near_one_percent() {
        let mut g = gen();
        let mut remote = 0;
        let mut total = 0;
        for _ in 0..2000 {
            let t = g.new_order(1);
            for l in &t.lines {
                total += 1;
                if l.supply_w != 1 {
                    remote += 1;
                }
            }
        }
        let rate = remote as f64 / total as f64;
        assert!(rate > 0.003 && rate < 0.03, "rate={rate}");
    }

    #[test]
    fn payment_remote_rate_near_fifteen_percent() {
        let mut g = gen();
        let remote = (0..2000).filter(|_| g.payment(2).c_w != 2).count();
        let rate = remote as f64 / 2000.0;
        assert!(rate > 0.10 && rate < 0.20, "rate={rate}");
    }

    #[test]
    fn business_txn_mix_is_nominal() {
        let mut g = gen();
        let mut counts = [0usize; 5];
        let mut total = 0usize;
        for _ in 0..5000 {
            let b = g.business_txn(1);
            assert_eq!(b.txns[0].kind, dclue_db::TxnKind::NewOrder);
            assert_eq!(b.txns[1].kind, dclue_db::TxnKind::Payment);
            for t in &b.txns {
                let i = match t.kind {
                    dclue_db::TxnKind::NewOrder => 0,
                    dclue_db::TxnKind::Payment => 1,
                    dclue_db::TxnKind::OrderStatus => 2,
                    dclue_db::TxnKind::Delivery => 3,
                    dclue_db::TxnKind::StockLevel => 4,
                };
                counts[i] += 1;
                total += 1;
            }
        }
        let frac: Vec<f64> = counts.iter().map(|&c| c as f64 / total as f64).collect();
        assert!((frac[0] - 0.43).abs() < 0.02, "new-order {frac:?}");
        assert!((frac[1] - 0.43).abs() < 0.02, "payment {frac:?}");
        assert!((frac[2] - 0.05).abs() < 0.01, "status {frac:?}");
        assert!((frac[3] - 0.05).abs() < 0.01, "delivery {frac:?}");
        assert!((frac[4] - 0.04).abs() < 0.01, "stock {frac:?}");
    }

    #[test]
    fn nurand_a_matches_spec_anchors() {
        // The spec's own constants fall out at full scale...
        assert_eq!(nurand_a(3000, 3), 1023);
        assert_eq!(nurand_a(100_000, 12), 8191);
        // ...and scaled domains keep the ratio.
        assert_eq!(nurand_a(300, 3), 127);
        assert_eq!(nurand_a(1000, 12), 63);
    }

    #[test]
    fn affinity_one_always_routes_home() {
        let mut rng = SimRng::new(1);
        for w in 1..=40 {
            let n = route_node(w, 40, 8, 1.0, &mut rng);
            assert_eq!(n, home_node(w, 40, 8));
        }
    }

    #[test]
    fn affinity_zero_routes_uniformly() {
        let mut rng = SimRng::new(2);
        let mut counts = vec![0usize; 8];
        for _ in 0..8000 {
            counts[route_node(1, 40, 8, 0.0, &mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn partial_affinity_routes_home_at_rate() {
        let mut rng = SimRng::new(3);
        let home = home_node(5, 40, 8);
        let hits = (0..10_000)
            .filter(|_| route_node(5, 40, 8, 0.8, &mut rng) == home)
            .count();
        // 0.8 + 0.2/8 = 0.825 expected.
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.825).abs() < 0.02, "rate={rate}");
    }

    #[test]
    fn warehouses_partition_evenly() {
        let nodes = 4;
        let mut per = vec![0; nodes as usize];
        for w in 1..=40 {
            per[home_node(w, 40, nodes) as usize] += 1;
        }
        assert_eq!(per, vec![10, 10, 10, 10]);
    }

    #[test]
    fn warehouse_span_inverts_home_node() {
        for &(nodes, warehouses) in &[(4u32, 40u32), (8, 40), (3, 10), (8, 10), (16, 7), (1, 5)] {
            for k in 0..nodes {
                let (lo, hi) = node_warehouse_span(k, nodes, warehouses);
                for w in 1..=warehouses {
                    let inside = lo <= hi && (lo..=hi).contains(&w);
                    assert_eq!(
                        home_node(w, warehouses, nodes) == k,
                        inside,
                        "n={nodes} W={warehouses} k={k} w={w}"
                    );
                }
            }
        }
    }

    #[test]
    fn node_population_matches_exact_session_layout() {
        // The closed form must count exactly the sessions the exact
        // client model homes on each node (home_w(i) = i*W/S + 1).
        for &(nodes, warehouses, sessions) in &[
            (4u32, 40u32, 800u64),
            (8, 40, 801),
            (3, 10, 17),
            (8, 10, 1000),
            (16, 7, 64),
            (1, 5, 9),
        ] {
            let mut counted = vec![0u64; nodes as usize];
            for i in 0..sessions {
                let w = (i * warehouses as u64 / sessions) as u32 + 1;
                counted[home_node(w, warehouses, nodes) as usize] += 1;
            }
            let mut total = 0;
            for k in 0..nodes {
                let pop = node_population(k, nodes, warehouses, sessions);
                assert_eq!(pop, counted[k as usize], "n={nodes} W={warehouses} k={k}");
                total += pop;
            }
            assert_eq!(total, sessions);
        }
    }

    #[test]
    fn warehouse_population_matches_exact_session_layout() {
        // The per-warehouse closed form must count exactly the sessions
        // the exact client model homes on each warehouse, and telescope
        // to each node's population.
        for &(nodes, warehouses, sessions) in &[
            (4u32, 40u32, 800u64),
            (8, 40, 801),
            (3, 10, 17),
            (8, 10, 1000),
            (16, 7, 64),
            (1, 5, 9),
        ] {
            let mut counted = vec![0u64; warehouses as usize + 1];
            for i in 0..sessions {
                let w = (i * warehouses as u64 / sessions) as u32 + 1;
                counted[w as usize] += 1;
            }
            for w in 1..=warehouses {
                assert_eq!(
                    warehouse_population(w, warehouses, sessions),
                    counted[w as usize],
                    "W={warehouses} S={sessions} w={w}"
                );
            }
            for k in 0..nodes {
                let (lo, hi) = node_warehouse_span(k, nodes, warehouses);
                let by_wh: u64 = (lo..=hi)
                    .map(|w| warehouse_population(w, warehouses, sessions))
                    .sum();
                assert_eq!(by_wh, node_population(k, nodes, warehouses, sessions));
            }
        }
    }

    #[test]
    fn node_population_handles_million_scale_without_overflow() {
        let nodes = 512;
        let warehouses = 1024;
        let sessions = 512u64 * 1_000_000;
        let total: u64 = (0..nodes)
            .map(|k| node_population(k, nodes, warehouses, sessions))
            .sum();
        assert_eq!(total, sessions);
    }
}
