//! Arena-based B+-tree index, `u64 -> u64`, with page-touch tracing.
//!
//! DCLUE maintains explicit B+-tree indices per table; index pages flow
//! through the buffer cache just like data pages, so every operation here
//! reports the *node path it touched* — the caller (the transaction
//! engine) turns those into buffer-cache accesses, fusion transfers and
//! disk reads. That is how the paper gets index-cache hit ratios to
//! "fall out of the actual functioning of the simulation".
//!
//! Deletion removes the key and unlinks nodes that become empty, but does
//! not rebalance siblings: TPC-C's only deleter (the new-order table)
//! removes the oldest keys in order, for which empty-node cleanup keeps
//! the tree tidy. This trade is documented here deliberately.

/// Maximum keys per node. 64 keys x (8 B key + 8 B value/child) plus
/// headers approximates an 8 KB index page at ~50% occupancy, matching
/// a production B+-tree's steady state.
const ORDER: usize = 64;

#[derive(Debug)]
enum Node {
    Internal {
        /// `keys[i]` is the smallest key reachable under `children[i+1]`.
        keys: Vec<u64>,
        children: Vec<u32>,
    },
    Leaf {
        keys: Vec<u64>,
        vals: Vec<u64>,
    },
    /// Freed slot.
    Free,
}

/// A B+-tree whose nodes live in a slab; node ids double as index-page
/// ids for buffer-cache accounting.
///
/// ```
/// use dclue_db::btree::BTree;
///
/// let mut idx = BTree::new();
/// let mut touched = Vec::new();
/// idx.insert(42, 7, &mut touched);
/// touched.clear();
/// assert_eq!(idx.get(42, &mut touched), Some(7));
/// // Every index page the lookup visited is reported for buffer-cache
/// // accounting:
/// assert!(!touched.is_empty());
/// ```
#[derive(Debug)]
pub struct BTree {
    nodes: Vec<Node>,
    free: Vec<u32>,
    root: u32,
    len: usize,
}

impl Default for BTree {
    fn default() -> Self {
        Self::new()
    }
}

impl BTree {
    pub fn new() -> Self {
        BTree {
            nodes: vec![Node::Leaf {
                keys: Vec::new(),
                vals: Vec::new(),
            }],
            free: Vec::new(),
            root: 0,
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of live nodes (= index pages).
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Smallest key stored at/under `node`, if it exists and is
    /// non-empty. Used by the cluster to partition index pages by the
    /// key range they serve.
    pub fn min_key(&self, node: u32) -> Option<u64> {
        match self.nodes.get(node as usize)? {
            Node::Leaf { keys, .. } => keys.first().copied(),
            Node::Internal { keys, .. } => keys.first().copied(),
            Node::Free => None,
        }
    }

    /// Depth of the tree (1 = just a root leaf).
    pub fn depth(&self) -> usize {
        let mut d = 1;
        let mut n = self.root;
        loop {
            match &self.nodes[n as usize] {
                Node::Internal { children, .. } => {
                    n = children[0];
                    d += 1;
                }
                _ => return d,
            }
        }
    }

    fn alloc(&mut self, node: Node) -> u32 {
        if let Some(i) = self.free.pop() {
            self.nodes[i as usize] = node;
            i
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    fn release(&mut self, id: u32) {
        self.nodes[id as usize] = Node::Free;
        self.free.push(id);
    }

    /// Look up `key`, recording every node visited in `trace`.
    pub fn get(&self, key: u64, trace: &mut Vec<u32>) -> Option<u64> {
        let mut n = self.root;
        loop {
            trace.push(n);
            match &self.nodes[n as usize] {
                Node::Internal { keys, children } => {
                    let i = keys.partition_point(|&k| k <= key);
                    n = children[i];
                }
                Node::Leaf { keys, vals } => {
                    return keys.binary_search(&key).ok().map(|i| vals[i]);
                }
                Node::Free => unreachable!("walked into a freed node"),
            }
        }
    }

    /// Insert or replace; returns the previous value if any.
    pub fn insert(&mut self, key: u64, val: u64, trace: &mut Vec<u32>) -> Option<u64> {
        let root = self.root;
        match self.insert_rec(root, key, val, trace) {
            InsertResult::Done(old) => old,
            InsertResult::Split(sep, right) => {
                // Grow a new root.
                let new_root = self.alloc(Node::Internal {
                    keys: vec![sep],
                    children: vec![root, right],
                });
                self.root = new_root;
                None
            }
        }
    }

    /// Remove `key`; returns its value if present.
    pub fn remove(&mut self, key: u64, trace: &mut Vec<u32>) -> Option<u64> {
        let root = self.root;
        let (old, _empty) = self.remove_rec(root, key, trace);
        // Shrink the root if it is an internal node with a single child.
        loop {
            match &self.nodes[self.root as usize] {
                Node::Internal { children, .. } if children.len() == 1 => {
                    let child = children[0];
                    let dead = self.root;
                    self.root = child;
                    self.release(dead);
                }
                _ => break,
            }
        }
        old
    }

    /// Ascending scan of `[lo, hi)`, up to `limit` entries; every node
    /// visited lands in `trace`.
    pub fn range(
        &self,
        lo: u64,
        hi: u64,
        limit: usize,
        out: &mut Vec<(u64, u64)>,
        trace: &mut Vec<u32>,
    ) {
        self.range_rec(self.root, lo, hi, limit, out, trace);
    }

    /// Largest `(key, value)` with `lo <= key < hi`, if any.
    pub fn last_in_range(&self, lo: u64, hi: u64, trace: &mut Vec<u32>) -> Option<(u64, u64)> {
        self.last_rec(self.root, lo, hi, trace)
    }

    /// Smallest `(key, value)` with `lo <= key < hi`, if any.
    pub fn first_in_range(&self, lo: u64, hi: u64, trace: &mut Vec<u32>) -> Option<(u64, u64)> {
        let mut out = Vec::with_capacity(1);
        self.range_rec(self.root, lo, hi, 1, &mut out, trace);
        out.pop()
    }

    // ------------------------------------------------------------------

    fn insert_rec(&mut self, n: u32, key: u64, val: u64, trace: &mut Vec<u32>) -> InsertResult {
        trace.push(n);
        match &mut self.nodes[n as usize] {
            Node::Leaf { keys, vals } => match keys.binary_search(&key) {
                Ok(i) => InsertResult::Done(Some(std::mem::replace(&mut vals[i], val))),
                Err(i) => {
                    keys.insert(i, key);
                    vals.insert(i, val);
                    self.len += 1;
                    if keys.len() > ORDER {
                        let mid = keys.len() / 2;
                        let rkeys = keys.split_off(mid);
                        let rvals = vals.split_off(mid);
                        let sep = rkeys[0];
                        let right = self.alloc(Node::Leaf {
                            keys: rkeys,
                            vals: rvals,
                        });
                        InsertResult::Split(sep, right)
                    } else {
                        InsertResult::Done(None)
                    }
                }
            },
            Node::Internal { keys, children } => {
                let i = keys.partition_point(|&k| k <= key);
                let child = children[i];
                match self.insert_rec(child, key, val, trace) {
                    InsertResult::Done(old) => InsertResult::Done(old),
                    InsertResult::Split(sep, right) => {
                        let Node::Internal { keys, children } = &mut self.nodes[n as usize] else {
                            unreachable!()
                        };
                        keys.insert(i, sep);
                        children.insert(i + 1, right);
                        if keys.len() > ORDER {
                            let mid = keys.len() / 2;
                            // keys[mid] moves up as the separator.
                            let up = keys[mid];
                            let rkeys = keys.split_off(mid + 1);
                            keys.pop();
                            let rchildren = children.split_off(mid + 1);
                            let right = self.alloc(Node::Internal {
                                keys: rkeys,
                                children: rchildren,
                            });
                            InsertResult::Split(up, right)
                        } else {
                            InsertResult::Done(None)
                        }
                    }
                }
            }
            Node::Free => unreachable!(),
        }
    }

    /// Returns `(removed value, node-is-now-empty)`.
    fn remove_rec(&mut self, n: u32, key: u64, trace: &mut Vec<u32>) -> (Option<u64>, bool) {
        trace.push(n);
        match &mut self.nodes[n as usize] {
            Node::Leaf { keys, vals } => match keys.binary_search(&key) {
                Ok(i) => {
                    keys.remove(i);
                    let v = vals.remove(i);
                    self.len -= 1;
                    let empty = keys.is_empty();
                    (Some(v), empty)
                }
                Err(_) => (None, false),
            },
            Node::Internal { keys, children } => {
                let i = keys.partition_point(|&k| k <= key);
                let child = children[i];
                let (old, child_empty) = self.remove_rec(child, key, trace);
                if child_empty {
                    let Node::Internal { keys, children } = &mut self.nodes[n as usize] else {
                        unreachable!()
                    };
                    // Keep at least one child so the tree stays rooted.
                    if children.len() > 1 {
                        children.remove(i);
                        keys.remove(if i == 0 { 0 } else { i - 1 });
                        self.release(child);
                    }
                    let empty = {
                        let Node::Internal { children, .. } = &self.nodes[n as usize] else {
                            unreachable!()
                        };
                        children.len() == 1 && self.is_node_empty(children[0])
                    };
                    (old, empty)
                } else {
                    (old, false)
                }
            }
            Node::Free => unreachable!(),
        }
    }

    fn is_node_empty(&self, n: u32) -> bool {
        match &self.nodes[n as usize] {
            Node::Leaf { keys, .. } => keys.is_empty(),
            Node::Internal { .. } => false,
            Node::Free => true,
        }
    }

    fn range_rec(
        &self,
        n: u32,
        lo: u64,
        hi: u64,
        limit: usize,
        out: &mut Vec<(u64, u64)>,
        trace: &mut Vec<u32>,
    ) {
        if out.len() >= limit {
            return;
        }
        trace.push(n);
        match &self.nodes[n as usize] {
            Node::Leaf { keys, vals } => {
                let start = keys.partition_point(|&k| k < lo);
                for i in start..keys.len() {
                    if keys[i] >= hi || out.len() >= limit {
                        break;
                    }
                    out.push((keys[i], vals[i]));
                }
            }
            Node::Internal { keys, children } => {
                let first = keys.partition_point(|&k| k <= lo);
                for i in first..children.len() {
                    if i > first {
                        // Subtree minimum is keys[i-1]; prune if past hi.
                        if keys[i - 1] >= hi {
                            break;
                        }
                    }
                    self.range_rec(children[i], lo, hi, limit, out, trace);
                    if out.len() >= limit {
                        break;
                    }
                }
            }
            Node::Free => unreachable!(),
        }
    }

    fn last_rec(&self, n: u32, lo: u64, hi: u64, trace: &mut Vec<u32>) -> Option<(u64, u64)> {
        trace.push(n);
        match &self.nodes[n as usize] {
            Node::Leaf { keys, vals } => {
                let end = keys.partition_point(|&k| k < hi);
                if end == 0 {
                    return None;
                }
                let i = end - 1;
                (keys[i] >= lo).then(|| (keys[i], vals[i]))
            }
            Node::Internal { keys, children } => {
                // Walk children from the rightmost that can contain < hi.
                let mut i = keys.partition_point(|&k| k < hi);
                loop {
                    if let Some(hit) = self.last_rec(children[i], lo, hi, trace) {
                        return Some(hit);
                    }
                    if i == 0 {
                        return None;
                    }
                    i -= 1;
                    // Subtree maximum below keys[i]; prune if under lo.
                    if keys[i] < lo {
                        return None;
                    }
                }
            }
            Node::Free => unreachable!(),
        }
    }
}

enum InsertResult {
    Done(Option<u64>),
    Split(u64, u32),
}

#[cfg(test)]
mod tests {
    use super::*;
    use dclue_sim::SimRng;
    use std::collections::BTreeMap;

    fn t() -> Vec<u32> {
        Vec::new()
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut b = BTree::new();
        for i in 0..1000u64 {
            assert_eq!(b.insert(i * 7 % 1000, i, &mut t()), None);
        }
        for i in 0..1000u64 {
            assert_eq!(b.get(i * 7 % 1000, &mut t()), Some(i));
        }
        assert_eq!(b.len(), 1000);
        assert_eq!(b.get(5000, &mut t()), None);
    }

    #[test]
    fn insert_replaces() {
        let mut b = BTree::new();
        assert_eq!(b.insert(5, 1, &mut t()), None);
        assert_eq!(b.insert(5, 2, &mut t()), Some(1));
        assert_eq!(b.get(5, &mut t()), Some(2));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn tree_grows_in_depth() {
        let mut b = BTree::new();
        assert_eq!(b.depth(), 1);
        for i in 0..10_000u64 {
            b.insert(i, i, &mut t());
        }
        assert!(b.depth() >= 3, "depth={}", b.depth());
        assert!(b.node_count() > 100);
    }

    #[test]
    fn trace_length_equals_depth_for_get() {
        let mut b = BTree::new();
        for i in 0..10_000u64 {
            b.insert(i, i, &mut t());
        }
        let mut trace = Vec::new();
        b.get(1234, &mut trace);
        assert_eq!(trace.len(), b.depth());
        assert_eq!(trace[0], b.root);
    }

    #[test]
    fn remove_then_get_misses() {
        let mut b = BTree::new();
        for i in 0..500u64 {
            b.insert(i, i + 1, &mut t());
        }
        assert_eq!(b.remove(250, &mut t()), Some(251));
        assert_eq!(b.get(250, &mut t()), None);
        assert_eq!(b.remove(250, &mut t()), None);
        assert_eq!(b.len(), 499);
    }

    #[test]
    fn fifo_workload_releases_nodes() {
        // The new-order pattern: insert at the tail, delete at the head.
        let mut b = BTree::new();
        for i in 0..1000u64 {
            b.insert(i, i, &mut t());
        }
        let peak = b.node_count();
        for i in 0..900u64 {
            b.insert(1000 + i, i, &mut t());
            b.remove(i, &mut t());
        }
        // Empty leaves must be reclaimed; node count should not balloon.
        assert!(
            b.node_count() < peak * 2,
            "nodes={} peak={peak}",
            b.node_count()
        );
        assert_eq!(b.len(), 1000);
    }

    #[test]
    fn range_scan_in_order() {
        let mut b = BTree::new();
        for i in (0..2000u64).rev() {
            b.insert(i * 2, i, &mut t());
        }
        let mut out = Vec::new();
        b.range(100, 140, usize::MAX, &mut out, &mut t());
        let keys: Vec<u64> = out.iter().map(|&(k, _)| k).collect();
        assert_eq!(
            keys,
            vec![
                100, 102, 104, 106, 108, 110, 112, 114, 116, 118, 120, 122, 124, 126, 128, 130,
                132, 134, 136, 138
            ]
        );
    }

    #[test]
    fn range_respects_limit() {
        let mut b = BTree::new();
        for i in 0..1000u64 {
            b.insert(i, i, &mut t());
        }
        let mut out = Vec::new();
        b.range(0, 1000, 7, &mut out, &mut t());
        assert_eq!(out.len(), 7);
        assert_eq!(out[6].0, 6);
    }

    #[test]
    fn last_in_range_finds_max() {
        let mut b = BTree::new();
        for i in 0..5000u64 {
            b.insert(i * 3, i, &mut t());
        }
        assert_eq!(b.last_in_range(0, 1000, &mut t()), Some((999, 333)));
        assert_eq!(b.last_in_range(998, 999, &mut t()), None);
        assert_eq!(b.last_in_range(0, u64::MAX, &mut t()), Some((14997, 4999)));
    }

    #[test]
    fn first_in_range_finds_min() {
        let mut b = BTree::new();
        for i in 10..100u64 {
            b.insert(i * 10, i, &mut t());
        }
        assert_eq!(b.first_in_range(0, u64::MAX, &mut t()), Some((100, 10)));
        assert_eq!(b.first_in_range(101, 110, &mut t()), None);
        assert_eq!(b.first_in_range(105, 121, &mut t()), Some((110, 11)));
    }

    #[test]
    fn min_key_reports_subtree_floor() {
        let mut b = BTree::new();
        for i in 100..5000u64 {
            b.insert(i, i, &mut t());
        }
        let mut trace = Vec::new();
        b.get(100, &mut trace);
        // The leaf holding key 100 reports a min key <= 100.
        let leaf = *trace.last().unwrap();
        assert!(b.min_key(leaf).unwrap() <= 100);
        assert_eq!(b.min_key(9999), None);
    }

    #[test]
    fn empty_tree_behaves() {
        let b = BTree::new();
        assert!(b.is_empty());
        assert_eq!(b.get(1, &mut t()), None);
        assert_eq!(b.last_in_range(0, 100, &mut t()), None);
        let mut out = Vec::new();
        b.range(0, 100, 10, &mut out, &mut t());
        assert!(out.is_empty());
    }

    #[test]
    fn root_shrinks_after_mass_deletion() {
        let mut b = BTree::new();
        for i in 0..5000u64 {
            b.insert(i, i, &mut t());
        }
        let deep = b.depth();
        assert!(deep >= 3);
        for i in 0..4999u64 {
            b.remove(i, &mut t());
        }
        assert_eq!(b.len(), 1);
        assert_eq!(b.get(4999, &mut t()), Some(4999));
        assert!(
            b.depth() < deep,
            "root must shrink: depth {} -> {}",
            deep,
            b.depth()
        );
    }

    #[test]
    fn range_spanning_many_leaves() {
        let mut b = BTree::new();
        for i in 0..10_000u64 {
            b.insert(i, i * 2, &mut t());
        }
        let mut out = Vec::new();
        let mut trace = Vec::new();
        b.range(2_000, 4_000, usize::MAX, &mut out, &mut trace);
        assert_eq!(out.len(), 2_000);
        assert_eq!(out.first(), Some(&(2_000, 4_000)));
        assert_eq!(out.last(), Some(&(3_999, 7_998)));
        // The scan touched many leaves but pruned the rest of the tree.
        assert!(trace.len() > 30, "traced {} nodes", trace.len());
        assert!(trace.len() < 100, "traced {} nodes", trace.len());
    }

    #[test]
    fn min_key_tracks_mutations() {
        let mut b = BTree::new();
        for i in 100..200u64 {
            b.insert(i, i, &mut t());
        }
        assert_eq!(b.min_key(0).map(|k| k >= 100), Some(true));
        let mut trace = Vec::new();
        b.get(100, &mut trace);
        let leaf = *trace.last().unwrap();
        b.remove(100, &mut t());
        // Leaf min key moved up after removing the smallest key.
        if let Some(k) = b.min_key(leaf) {
            assert!(k > 100);
        }
    }

    #[test]
    fn interleaved_duplicate_keys_replace_not_grow() {
        let mut b = BTree::new();
        for round in 0..50u64 {
            for k in 0..100u64 {
                b.insert(k, round, &mut t());
            }
        }
        assert_eq!(b.len(), 100);
        assert_eq!(b.get(50, &mut t()), Some(49));
        assert!(b.node_count() < 10, "no growth from replacement");
    }

    #[test]
    fn matches_btreemap() {
        let mut rng = SimRng::new(0xB7EE_0001);
        for case in 0..32 {
            let n_ops = rng.uniform(1, 399) as usize;
            let mut model = BTreeMap::new();
            let mut tree = BTree::new();
            for _ in 0..n_ops {
                let op = rng.uniform(0, 2) as u8;
                let k = rng.uniform(0, 499);
                let v = rng.uniform(0, 999);
                match op {
                    0 => {
                        assert_eq!(tree.insert(k, v, &mut t()), model.insert(k, v));
                    }
                    1 => {
                        assert_eq!(tree.remove(k, &mut t()), model.remove(&k));
                    }
                    _ => {
                        assert_eq!(tree.get(k, &mut t()), model.get(&k).copied());
                    }
                }
                assert_eq!(tree.len(), model.len(), "case {case}");
            }
            // Full-range scan equals the model's ordered contents.
            let mut out = Vec::new();
            tree.range(0, u64::MAX, usize::MAX, &mut out, &mut t());
            let expect: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
            assert_eq!(out, expect, "case {case}");
        }
    }

    #[test]
    fn last_in_range_matches_model() {
        use std::collections::BTreeSet;
        let mut rng = SimRng::new(0xB7EE_0002);
        for case in 0..48 {
            let n_keys = rng.uniform(1, 299) as usize;
            let keys: BTreeSet<u64> = (0..n_keys).map(|_| rng.uniform(0, 1999)).collect();
            let lo = rng.uniform(0, 1999);
            let span = rng.uniform(1, 499);
            let hi = lo + span;
            let mut tree = BTree::new();
            for &k in &keys {
                tree.insert(k, k * 2, &mut t());
            }
            let expect = keys.range(lo..hi).next_back().map(|&k| (k, k * 2));
            assert_eq!(tree.last_in_range(lo, hi, &mut t()), expect, "case {case}");
        }
    }
}
