//! The workload-driver component: closed-loop TPC-C client terminals
//! and the FTP cross-traffic source.

use crate::components::fabric::{ConnKind, MsgTag};
use crate::components::platform::Action;
use crate::config::QosPolicy;
use crate::ipc::{CLIENT_REQ_BYTES, CLIENT_RESP_BYTES};
use crate::world::{Ev, World};
use dclue_db::tpcc::TxnInput;
use dclue_net::packet::Dscp;
use dclue_net::types::Side;
use dclue_net::{ConnId, HostId, MsgId};
use dclue_sim::{Duration, SimTime};
use dclue_workload::{route_node, FtpGenerator, FtpTransfer, TpccGenerator};
use std::collections::VecDeque;

/// A closed-loop client terminal session. Under the exact client model
/// there is one per terminal, alive for the whole run; under the
/// aggregate model a session slot exists only while a terminal has a
/// business transaction in flight, and the slot is recycled afterwards
/// (`agg_home` marks the node population it was drawn from).
pub(crate) struct ClientSession {
    pub home_w: u32,
    pub client_host: HostId,
    pub node: u32,
    pub conn: Option<ConnId>,
    pub queue: VecDeque<TxnInput>,
    pub inflight: Option<TxnInput>,
    /// Aggregate model: the node population this active terminal came
    /// from. `None` for exact-model sessions, recycled aggregate slots
    /// and foreign-group mirror slots of windowed runs.
    pub agg_home: Option<u32>,
    /// Connection-pool queueing delay to fold into the next measured
    /// response time (always zero under the exact model).
    pub queue_delay: Duration,
}

/// Aggregate client model: the O(1) state of one node's terminal
/// population. The N independent exponential think timers collapse into
/// one arrival process — the minimum of `thinking` Exp(T) residuals is
/// Exp(T / thinking), so only the *next* wake-up is ever materialized
/// (order-statistics superposition), re-sampled at each state edge,
/// which is distributionally exact by memorylessness.
pub(crate) struct AggPopulation {
    /// Closed-loop terminal population homed on this node.
    pub population: u64,
    /// Terminals that have not yet joined the closed loop. The exact
    /// driver staggers first arrivals across the warm-up span to ramp
    /// the cluster up instead of thundering-herding it; the aggregate
    /// model reproduces that transient by activating the population in
    /// a bounded number of `AggActivate` ticks spread over the same
    /// span (dormant → thinking), after which the Exp(think) first
    /// arrival falls out of the superposed process itself.
    pub dormant: u64,
    /// Terminals currently in their think phase. While the connection
    /// pool is saturated the wake timer stays un-armed, so this also
    /// counts the not-yet-materialized waiters behind `head` — the
    /// closed-loop invariant
    /// `population == dormant + thinking + head + inflight`
    /// holds at every dispatch edge.
    pub thinking: u64,
    /// At most one woken-but-unadmitted terminal (its wake instant),
    /// present only while the pool is saturated. Lazy head-of-line
    /// materialization keeps the queue O(1) regardless of population.
    pub head: Option<SimTime>,
    /// Terminals with a business transaction in flight; bounded by
    /// `client_conns_per_node`, which is what makes driver state
    /// O(active transactions) instead of O(terminals).
    pub inflight: u64,
    /// Generation guard for the wake timer. A re-armed keyed timer whose
    /// predecessor already cascaded out of the timer wheel can no longer
    /// be cancelled (see `EventHeap::cancel_timer`); a fired `AggWake`
    /// carrying a stale generation is ignored instead of dispatching a
    /// phantom arrival — same idiom as the lock-wait `wait_gen`.
    pub wake_gen: u64,
    /// Home-warehouse block `[w_lo, w_hi]` the population draws from.
    pub w_lo: u32,
    pub w_hi: u32,
    /// Per-warehouse count of terminals *not* in flight (`free_w[i]`
    /// covers warehouse `w_lo + i`), initialized to the exact layout's
    /// fixed terminal→warehouse assignment. Dispatches draw the home
    /// warehouse ∝ these weights and decrement; completions increment.
    /// This reproduces the exact driver's stratification — a warehouse
    /// can never carry more concurrent transactions than it has
    /// terminals, which caps district-lock contention the same way the
    /// fixed assignment does. O(warehouses-per-node) state, independent
    /// of population. During ramp-up dormant terminals stay counted
    /// (activation is warehouse-uniform, so the mixture is right in
    /// expectation); `sum(free_w) == dormant + thinking + head`.
    pub free_w: Vec<u64>,
}

/// One pooled client connection of an aggregate-mode node population.
/// Pooled connections are long-lived: acquired per business transaction,
/// released (not closed) at completion.
pub(crate) struct AggConn {
    pub conn: ConnId,
    pub established: bool,
    /// Session slot currently bound to the connection (`None` = idle).
    pub busy: Option<u32>,
}

/// An FTP cross-traffic endpoint pair.
pub(crate) struct FtpPair {
    pub client: HostId,
    pub server: HostId,
    pub generator: FtpGenerator,
    /// Token-bucket state (tokens in bytes) for the optional policer.
    pub tokens: f64,
    pub tokens_at: SimTime,
    /// Live transfers (for connection admission control).
    pub active: u32,
    /// Transfers denied by CAC / policing.
    pub denied: u64,
}

/// Everything that *offers load* to the cluster: terminal sessions in
/// their think/request loop and the FTP pair. Egress port: framed
/// client messages tagged with `MsgTag`; ingress: the responses the
/// engine sends back through `World::reply_to_client`.
pub struct WorkloadDriver {
    pub(crate) sessions: Vec<ClientSession>,
    pub(crate) gen: TpccGenerator,
    pub(crate) ftp_pairs: Vec<FtpPair>,
    /// Aggregate model: one population per node (empty under exact).
    pub(crate) agg: Vec<AggPopulation>,
    /// Aggregate model: pooled client connections, `[home][target]`.
    pub(crate) pools: Vec<Vec<Vec<AggConn>>>,
    /// Recycled session-slot ids (aggregate model only).
    pub(crate) free_slots: Vec<u32>,
    /// Fresh-slot counter; slot ids are `counter * groups + my_group`
    /// so the windowed engine's group worlds allocate disjoint ids.
    pub(crate) next_local_slot: u64,
}

/// Keyed-timer key for a node population's aggregate wake event. Bit 61
/// keeps the space disjoint from the lock-wait keys (bit 60) and the
/// TCP timer keys (below 2^35).
#[inline]
pub(crate) fn agg_wake_key(node: u32) -> u64 {
    (1u64 << 61) | node as u64
}

impl World {
    // ------------------------------------------------------------------
    // Aggregate client model (ClientModel::Aggregate)
    // ------------------------------------------------------------------

    /// Arm (or re-arm) node `k`'s single wake timer: the next arrival of
    /// the superposed think-time process, Exp(think_time / thinking).
    /// No-op when nobody is thinking or a woken head is already queued
    /// (while saturated, wake events throttle to the dispatch rate, so
    /// the event count is O(throughput), not O(population)).
    pub(crate) fn agg_arm_wake(&mut self, k: u32) {
        let a = &mut self.driver.agg[k as usize];
        // Every re-arm moves to a new generation so any uncancellable
        // predecessor that still fires is recognized as stale.
        a.wake_gen += 1;
        let gen = a.wake_gen;
        if a.thinking == 0 || a.head.is_some() {
            return;
        }
        let mean = Duration::from_nanos((self.cfg.think_time.nanos() / a.thinking).max(1));
        let delay = self.rng.exponential(mean);
        self.heap.arm_timer(
            agg_wake_key(k),
            self.now + delay,
            Ev::AggWake { node: k, gen },
        );
    }

    /// One terminal of population `k` finished thinking. Dispatch it if
    /// a pooled connection is free, else park it as the materialized
    /// head of the (otherwise virtual) admission queue.
    pub(crate) fn agg_wake(&mut self, k: u32, gen: u64) {
        let cap = self.cfg.client_conns_per_node as u64;
        let now = self.now;
        let dispatch = {
            let a = &mut self.driver.agg[k as usize];
            if gen != a.wake_gen {
                return; // stale wake from a superseded timer arm
            }
            debug_assert!(a.thinking > 0, "aggregate wake with empty think pool");
            a.thinking -= 1;
            if a.inflight < cap {
                a.inflight += 1;
                true
            } else {
                debug_assert!(a.head.is_none(), "second head materialized");
                a.head = Some(now);
                false
            }
        };
        if dispatch {
            self.agg_dispatch(k, Duration::ZERO);
            self.agg_arm_wake(k);
        }
        self.agg_check_invariant(k);
    }

    /// A terminal of population `k` completed (or abandoned) its
    /// business transaction: return it to the think pool and admit the
    /// queued head, if any. The head's successor — the next order
    /// statistic of the terminals that were thinking across the
    /// saturation window — is sampled here; a successor landing in the
    /// future is discarded and re-sampled from *now* at the current
    /// rate, which is exact by memorylessness.
    pub(crate) fn agg_return_terminal(&mut self, k: u32, home_w: u32) {
        let now = self.now;
        let think = self.cfg.think_time;
        let (head, th_window) = {
            let a = &mut self.driver.agg[k as usize];
            debug_assert!(a.inflight > 0, "aggregate return without dispatch");
            a.inflight -= 1;
            let th_window = a.thinking;
            a.thinking += 1;
            a.free_w[(home_w - a.w_lo) as usize] += 1;
            (a.head.take(), th_window)
        };
        if let Some(h) = head {
            let queue_delay = now.since(h);
            let succ = think.nanos().checked_div(th_window).map(|per| {
                let mean = Duration::from_nanos(per.max(1));
                h + self.rng.exponential(mean)
            });
            let a = &mut self.driver.agg[k as usize];
            if let Some(s) = succ {
                if s <= now {
                    a.head = Some(s);
                    a.thinking -= 1;
                }
            }
            a.inflight += 1;
            self.agg_dispatch(k, queue_delay);
        }
        if self.driver.agg[k as usize].head.is_none() {
            self.agg_arm_wake(k);
        }
        self.agg_check_invariant(k);
    }

    /// Start a business transaction for one admitted terminal of
    /// population `k`: allocate a session slot, draw the home warehouse
    /// ∝ the per-warehouse free-terminal counts (preserving the exact
    /// layout's stratification — see `AggPopulation::free_w`), generate
    /// the transaction mix (identity-free — the NURand/mix streams come
    /// from the shared generator, same as exact mode), route it, and
    /// bind a pooled connection to the routed node.
    fn agg_dispatch(&mut self, k: u32, queue_delay: Duration) {
        dclue_trace::metric_add!("driver.agg_dispatches", 1);
        let slot = self.agg_alloc_slot();
        let total: u64 = self.driver.agg[k as usize].free_w.iter().sum();
        debug_assert!(total > 0, "dispatch from node {k} with no free terminals");
        let mut r = self.rng.uniform(0, total.saturating_sub(1));
        let home_w = {
            let a = &mut self.driver.agg[k as usize];
            let mut pick = a.free_w.len() - 1;
            for (i, f) in a.free_w.iter().enumerate() {
                if r < *f {
                    pick = i;
                    break;
                }
                r -= *f;
            }
            a.free_w[pick] -= 1;
            a.w_lo + pick as u32
        };
        let business = self.driver.gen.business_txn(home_w);
        let mut node = route_node(
            home_w,
            self.warehouses,
            self.cfg.nodes,
            self.cfg.affinity,
            &mut self.rng,
        );
        // Failover: a crashed home node reroutes to the next live one.
        if !self.alive[node as usize] {
            for off in 1..self.cfg.nodes {
                let cand = (node + off) % self.cfg.nodes;
                if self.alive[cand as usize] {
                    node = cand;
                    break;
                }
            }
        }
        let s = &mut self.driver.sessions[slot as usize];
        s.home_w = home_w;
        s.node = node;
        s.agg_home = Some(k);
        s.queue_delay = queue_delay;
        s.queue = business.txns.into();
        s.inflight = None;
        s.conn = None;
        self.agg_bind_conn(k, node, slot);
    }

    /// Bind a pooled connection from population `k` to node `target`
    /// for session slot `slot`, reusing an idle pooled connection when
    /// one exists and opening a long-lived one otherwise. While bound
    /// the connection is tagged `ConnKind::Client` so responses and
    /// resets route by session; released connections revert to
    /// `ConnKind::ClientPool`.
    fn agg_bind_conn(&mut self, k: u32, target: u32, slot: u32) {
        let pool = &mut self.driver.pools[k as usize][target as usize];
        let idx = pool
            .iter()
            .position(|c| c.busy.is_none() && c.established)
            .or_else(|| pool.iter().position(|c| c.busy.is_none()));
        if let Some(i) = idx {
            let c = &mut pool[i];
            c.busy = Some(slot);
            let (conn, established) = (c.conn, c.established);
            self.fabric
                .conn_info
                .insert(conn, ConnKind::Client { session: slot });
            self.driver.sessions[slot as usize].conn = Some(conn);
            if established {
                self.client_send_next(slot);
            }
            return;
        }
        let client_host = self.driver.sessions[slot as usize].client_host;
        let server_host = self.nodes[target as usize].host;
        let cfg = self.tcp_config(true);
        let conn = self.with_net(|net, ob| {
            net.open_connection(client_host, server_host, Dscp::BestEffort, cfg, ob)
        });
        self.driver.pools[k as usize][target as usize].push(AggConn {
            conn,
            established: false,
            busy: Some(slot),
        });
        self.fabric
            .conn_info
            .insert(conn, ConnKind::Client { session: slot });
        self.driver.sessions[slot as usize].conn = Some(conn);
        // on_established sends the first request once the handshake ends.
    }

    /// Release slot `slot`'s pooled connection back to `(k, target)`'s
    /// pool without closing it.
    pub(crate) fn agg_release_conn(&mut self, k: u32, target: u32, conn: ConnId) {
        if let Some(c) = self.driver.pools[k as usize][target as usize]
            .iter_mut()
            .find(|c| c.conn == conn)
        {
            c.busy = None;
        }
        self.fabric
            .conn_info
            .insert(conn, ConnKind::ClientPool { home: k, target });
    }

    /// Allocate a session slot: recycle a freed one, else mint a fresh
    /// id disjoint from every other group world's ids.
    fn agg_alloc_slot(&mut self) -> u32 {
        let id = match self.driver.free_slots.pop() {
            Some(id) => id,
            None => {
                let (groups, my) = match self.fabric.xg.as_ref() {
                    Some(xg) => (xg.groups as u64, xg.my_group as u64),
                    None => (1, 0),
                };
                let id = self.driver.next_local_slot * groups + my;
                self.driver.next_local_slot += 1;
                id as u32
            }
        };
        self.ensure_slot(id);
        id
    }

    /// Grow the session table to cover slot `id` (used both for local
    /// allocation and for foreign-group mirror slots shipped in by the
    /// windowed engine). Existing slots are untouched.
    pub(crate) fn ensure_slot(&mut self, id: u32) {
        let i = id as usize;
        let sessions = &mut self.driver.sessions;
        if i < sessions.len() {
            return;
        }
        let hosts = &self.fabric.client_hosts;
        while sessions.len() <= i {
            let j = sessions.len();
            sessions.push(ClientSession {
                home_w: 1,
                client_host: hosts[j % hosts.len()],
                node: 0,
                conn: None,
                queue: VecDeque::new(),
                inflight: None,
                agg_home: None,
                queue_delay: Duration::ZERO,
            });
        }
    }

    /// Recycle a finished aggregate session slot. The slot's fields are
    /// neutralized so stale in-flight notifications for the old binding
    /// fall through the `conn`/`inflight` guards.
    pub(crate) fn agg_free_slot(&mut self, slot: u32) {
        let s = &mut self.driver.sessions[slot as usize];
        s.agg_home = None;
        s.conn = None;
        s.inflight = None;
        s.queue.clear();
        s.queue_delay = Duration::ZERO;
        self.driver.free_slots.push(slot);
    }

    /// A ramp-up tick: move `count` terminals of population `k` from
    /// dormant to thinking and refresh the wake timer at the new rate
    /// (re-sampling the pending arrival at the higher rate is exact by
    /// memorylessness of the superposed process).
    pub(crate) fn agg_activate(&mut self, k: u32, count: u64) {
        {
            let a = &mut self.driver.agg[k as usize];
            debug_assert!(a.dormant >= count, "over-activated population {k}");
            a.dormant -= count;
            a.thinking += count;
        }
        self.agg_arm_wake(k);
        self.agg_check_invariant(k);
    }

    #[inline]
    fn agg_check_invariant(&self, k: u32) {
        let a = &self.driver.agg[k as usize];
        debug_assert_eq!(
            a.population,
            a.dormant + a.thinking + a.head.is_some() as u64 + a.inflight,
            "aggregate closed-loop invariant violated on node {k}"
        );
        debug_assert_eq!(
            a.free_w.iter().sum::<u64>(),
            a.population - a.inflight,
            "aggregate per-warehouse stratification drifted on node {k}"
        );
        debug_assert!(
            a.population == 0 || a.free_w.len() == (a.w_hi - a.w_lo + 1) as usize,
            "aggregate warehouse table sized off the node span on node {k}"
        );
    }

    // ------------------------------------------------------------------
    // Client sessions
    // ------------------------------------------------------------------

    pub(crate) fn client_begin(&mut self, session: u32) {
        let (home_w, client_host) = {
            let s = &self.driver.sessions[session as usize];
            (s.home_w, s.client_host)
        };
        let business = self.driver.gen.business_txn(home_w);
        let mut node = route_node(
            home_w,
            self.warehouses,
            self.cfg.nodes,
            self.cfg.affinity,
            &mut self.rng,
        );
        // Failover: a crashed home node reroutes to the next live one.
        if !self.alive[node as usize] {
            for off in 1..self.cfg.nodes {
                let cand = (node + off) % self.cfg.nodes;
                if self.alive[cand as usize] {
                    node = cand;
                    break;
                }
            }
        }
        // Windowed mode note: a route that lands in a foreign group is
        // not folded back in (that would shrink the page ping-pong set
        // and distort coherence traffic). The connection below opens to
        // the foreign node's local *replica* host, so the handshake and
        // every request frame still compete for this world's fabric;
        // delivery at the replica is intercepted in `on_message` and
        // shipped across the window barrier to the owning group world,
        // which executes on the authoritative node and sends the
        // response through *its* fabric on a mirror connection.
        let cfg = self.tcp_config(false);
        let server_host = self.nodes[node as usize].host;
        let conn = self.with_net(|net, ob| {
            net.open_connection(client_host, server_host, Dscp::BestEffort, cfg, ob)
        });
        self.fabric
            .conn_info
            .insert(conn, ConnKind::Client { session });
        let s = &mut self.driver.sessions[session as usize];
        s.node = node;
        s.conn = Some(conn);
        s.queue = business.txns.into();
        s.inflight = None;
    }

    pub(crate) fn client_send_next(&mut self, session: u32) {
        let s = &mut self.driver.sessions[session as usize];
        let Some(conn) = s.conn else { return };
        let Some(input) = s.queue.pop_front() else {
            if let Some(k) = s.agg_home {
                // Aggregate model: business transaction complete —
                // release the pooled connection (kept open for the next
                // terminal), recycle the session slot, and return the
                // terminal to its population's think pool.
                let node = s.node;
                let home_w = s.home_w;
                s.conn = None;
                if self.xg_is_foreign(node) {
                    // Windowed mode: tear down the executing world's
                    // mirror connection for this shipped slot.
                    let dest = self
                        .fabric
                        .xg
                        .as_ref()
                        .map(|xg| crate::components::fabric::xg_group_of(node, xg.nodes, xg.groups, xg.racks))
                        .expect("foreign node outside windowed mode");
                    self.xg_stage_now(
                        dest,
                        64,
                        crate::components::fabric::XgPayload::ClientDone { session },
                    );
                }
                self.agg_release_conn(k, node, conn);
                self.agg_free_slot(session);
                self.agg_return_terminal(k, home_w);
                return;
            }
            // Business transaction complete: close and think.
            self.with_net(|net, ob| {
                net.close_connection(conn, Side::Opener, ob);
                net.close_connection(conn, Side::Acceptor, ob);
            });
            let s = &mut self.driver.sessions[session as usize];
            s.conn = None;
            let node = s.node;
            let delay = self.rng.exponential(self.cfg.think_time);
            self.heap
                .push(self.now + delay, Ev::ClientThink { session });
            // Windowed mode: tell the executing world to tear down its
            // mirror connection for a shipped session.
            if self.xg_is_foreign(node) {
                let dest = self
                    .fabric
                    .xg
                    .as_ref()
                    .map(|xg| crate::components::fabric::xg_group_of(node, xg.nodes, xg.groups, xg.racks))
                    .expect("foreign node outside windowed mode");
                self.xg_stage_now(
                    dest,
                    64,
                    crate::components::fabric::XgPayload::ClientDone { session },
                );
            }
            return;
        };
        s.inflight = Some(input);
        self.send_client_msg(
            conn,
            Side::Opener,
            MsgTag::ClientReq { session },
            CLIENT_REQ_BYTES,
        );
    }

    pub(crate) fn client_got_response(&mut self, session: u32) {
        self.client_send_next(session);
    }

    /// Called by the engine when a transaction finished: respond to the
    /// waiting client. In windowed mode the session may be foreign-homed
    /// (a shipped transaction): `conn` is then this executing world's
    /// mirror connection, and the response travels this world's real
    /// fabric before being relayed across the barrier at delivery.
    pub(crate) fn reply_to_client(&mut self, node: u32, session: u32) {
        let Some(conn) = self.driver.sessions[session as usize].conn else {
            return;
        };
        let bytes = CLIENT_RESP_BYTES;
        let instr = self.paths.client_resp_build + self.paths.send_instr(bytes);
        self.charge_then(node, instr, Action::Nop);
        self.send_client_msg(conn, Side::Acceptor, MsgTag::ClientResp { session }, bytes);
    }

    // ------------------------------------------------------------------
    // FTP cross traffic
    // ------------------------------------------------------------------

    pub(crate) fn ftp_next(&mut self, pair: u32) {
        let (gap, transfer) = self.driver.ftp_pairs[pair as usize]
            .generator
            .next_transfer();
        self.heap.push(self.now + gap, Ev::FtpNext { pair });
        // Connection admission control: refuse the transfer outright
        // when the concurrent-transfer budget is exhausted.
        if let Some(cap) = self.cfg.ftp_max_concurrent {
            let p = &mut self.driver.ftp_pairs[pair as usize];
            if p.active >= cap {
                p.denied += 1;
                return;
            }
        }
        // Token-bucket shaping: push the transfer's start back until the
        // bucket holds its bytes.
        if let Some(pol) = self.cfg.ftp_policer {
            let now = self.now;
            let p = &mut self.driver.ftp_pairs[pair as usize];
            let dt = now.since(p.tokens_at).as_secs_f64();
            p.tokens = (p.tokens + dt * pol.rate_bps / 8.0).min(pol.burst_bytes);
            p.tokens_at = now;
            let need = transfer.bytes() as f64;
            if p.tokens < need {
                // Not enough credit: drop this transfer (a shaper would
                // queue it; at sustained overload that queue is
                // unbounded, so policing = drop is the stable choice).
                p.denied += 1;
                return;
            }
            p.tokens -= need;
        }
        self.driver.ftp_pairs[pair as usize].active += 1;
        let (client, server) = {
            let p = &self.driver.ftp_pairs[pair as usize];
            (p.client, p.server)
        };
        let dscp = match self.cfg.qos {
            QosPolicy::FtpPriority | QosPolicy::FtpWfq { .. } | QosPolicy::Autonomic { .. } => {
                Dscp::Af21
            }
            QosPolicy::AllBestEffort => Dscp::BestEffort,
        };
        let cfg = self.tcp_config(false);
        let conn = self.with_net(|net, ob| net.open_connection(client, server, dscp, cfg, ob));
        self.fabric.conn_info.insert(conn, ConnKind::Ftp { pair });
        // Queue the payload immediately; TCP sends it once established.
        let (side, bytes) = match transfer {
            FtpTransfer::Put { bytes } => (Side::Opener, bytes),
            FtpTransfer::Get { bytes } => (Side::Acceptor, bytes),
        };
        let id = MsgId(self.fabric.next_msg);
        self.fabric.next_msg += 1;
        self.fabric
            .msg_tags
            .insert(id, (conn, MsgTag::FtpFile { pair }));
        self.with_net(|net, ob| net.send_message(conn, side, id, bytes, ob));
    }
}
