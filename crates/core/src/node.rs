//! One server node: CPU complex, buffer cache, lock-master shard,
//! directory shard, and disk subsystems.

use crate::fusion::Directory;
use dclue_db::{BufferCache, LockTable, PageKey};
use dclue_net::HostId;
use dclue_platform::Cpu;
use dclue_sim::SimTime;
use dclue_storage::Disk;
use std::collections::BTreeMap;

/// A page miss in flight: when it started, who waits on it, and the
/// access mode of the fault that registered it (the coherence protocol
/// may fetch reads and writes differently).
#[derive(Debug)]
pub struct PendingPage {
    pub since: SimTime,
    pub waiters: Vec<u64>,
    pub exclusive: bool,
}

/// Disk subsystem selector for disk events.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DiskKind {
    Data,
    Log,
}

/// Per-node simulation state.
pub struct Node {
    pub id: u32,
    pub host: HostId,
    pub cpu: Cpu,
    pub buffer: BufferCache,
    /// Lock-master shard for resources this node masters.
    pub locks: LockTable,
    /// Cache-fusion directory shard for pages this node masters.
    pub directory: Directory,
    pub data_disks: Vec<Disk>,
    pub log_disks: Vec<Disk>,
    /// Sequential log positions, one per log spindle.
    pub log_lba: Vec<u64>,
    pub log_rr: usize,
    /// Page misses in flight: waiting transactions per page. A
    /// `BTreeMap` so maintenance sweeps iterate in page order without
    /// the collect-and-sort pass a hash map would force (the map is
    /// small — bounded by in-flight misses — so ordered lookups are
    /// cheap too).
    pub pending_pages: BTreeMap<PageKey, PendingPage>,
    /// Transactions currently executing here.
    pub resident_txns: u64,
}

impl Node {
    /// Pick a data spindle for an LBA (chunked striping preserves
    /// elevator locality within 64-block runs).
    pub fn data_spindle(&self, lba: u64) -> usize {
        ((lba / 64) % self.data_disks.len() as u64) as usize
    }

    /// Next log spindle (round robin) and its sequential LBA.
    pub fn next_log_slot(&mut self) -> (usize, u64) {
        let d = self.log_rr % self.log_disks.len();
        self.log_rr = self.log_rr.wrapping_add(1);
        let lba = self.log_lba[d];
        self.log_lba[d] = lba + 1;
        (d, lba)
    }
}
