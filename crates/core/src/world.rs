//! The assembled simulation: topology, global event loop, client
//! sessions and cross traffic. Transaction execution lives in
//! [`crate::engine`] (also `impl World` blocks).

use crate::components::driver::{ClientSession, FtpPair, WorkloadDriver};
use crate::components::fabric::{ConnInfoTable, ConnKind, ConnTable, FabricPort};
use crate::components::platform::PlatformPort;
use crate::components::storage::{LogBatch, StoragePort};
use crate::config::{ClientModel, ClusterConfig, ProtocolKind, QosPolicy, StorageMode};
use crate::fusion::Directory;
use crate::ipc::{ConnClass, IpcMsg};
use crate::metrics::{Collector, Report};
use crate::node::{DiskKind, Node};
use crate::pathlen::PathLengths;
use crate::protocol::CoherenceProtocol;
use dclue_db::{BufferCache, Database, LockTable, PageKey, Table};
use dclue_fault::{FaultKind, FaultScheduler, LinkRef};
use dclue_net::packet::Dscp;
use dclue_net::{ConnId, LinkId, NetEvent};
use dclue_platform::{Cpu, CpuEvent};
use dclue_sim::{Duration, EventHeap, FxHashMap, Outbox, SimRng, SimTime};
use dclue_storage::{Disk, DiskEvent, RetryPolicy, StallGate};
use dclue_workload::{FtpGenerator, TpccGenerator};
use std::collections::{BTreeMap, VecDeque};

/// Global event type.
#[derive(Debug)]
pub enum Ev {
    Net(NetEvent),
    Cpu {
        node: u32,
        ev: CpuEvent,
    },
    Disk {
        node: u32,
        kind: DiskKind,
        disk: u32,
        ev: DiskEvent,
    },
    /// Centralized-SAN array events (SAN storage mode).
    San {
        disk: u32,
        ev: DiskEvent,
    },
    /// A SAN IO crossing the (unmodeled) SAN fabric: submit on arrival.
    SanSubmit {
        disk: u32,
        req: dclue_storage::DiskRequest,
    },
    /// An action deferred by the SAN fabric's return latency.
    DelayedAction {
        id: u64,
    },
    /// Group-commit flush timer for a node's pending log batch.
    LogFlush {
        node: u32,
        gen: u64,
    },
    /// Fault injection: abort one cluster connection.
    Chaos,
    /// The fault plan has events due: apply them.
    Fault,
    /// iSCSI initiator command timeout for attempt `attempt`.
    IscsiTimeout {
        node: u32,
        page: PageKey,
        attempt: u32,
    },
    /// Reopen a cluster connection once both endpoints are alive.
    IpcReconnect {
        a: u32,
        b: u32,
        class: ConnClass,
        attempt: u32,
    },
    ClientThink {
        session: u32,
    },
    /// Aggregate client model: the next terminal of node `node`'s
    /// population finished thinking (keyed timer, one per node). `gen`
    /// guards against stale fires of superseded arms (see
    /// `AggPopulation::wake_gen`).
    AggWake {
        node: u32,
        gen: u64,
    },
    /// Aggregate client model ramp-up: `count` terminals of node
    /// `node`'s population join the closed loop (dormant → thinking).
    AggActivate {
        node: u32,
        count: u64,
    },
    FtpNext {
        pair: u32,
    },
    TxnRetry {
        txn: u64,
    },
    LockWaitTimeout {
        txn: u64,
        gen: u32,
    },
    Sample,
    EndWarmup,
    EndRun,
    /// A cross-group message injected at a window barrier by the
    /// windowed intra-run engine (`crate::windowed`). Carries the
    /// receive side of what the packet engine would have done had the
    /// message been simulated on this world's fabric.
    XgIpc {
        msg: crate::components::fabric::XgPayload,
    },
}

// ---------------------------------------------------------------------
// Transaction state (driven by engine.rs)
// ---------------------------------------------------------------------

/// Where a transaction is, between CPU bursts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Phase {
    /// An accumulated CPU burst is running; `block` says what happens
    /// when it completes.
    Running,
    WaitPage,
    WaitLockRemote,
    WaitLockQueued,
    WaitLog,
    Retrying,
}

/// Resume point inside the transaction program.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Cursor {
    NeedPlan,
    Pages,
    Locks,
}

/// The blocking action performed once the accumulated burst retires.
/// Transactions compute *until they genuinely block* — the burst models
/// that continuous run, and the block that follows is a real context
/// switch (the only kind the platform charges for).
#[derive(Clone, Copy, Debug)]
pub(crate) enum Block {
    PageFault {
        key: PageKey,
        exclusive: bool,
    },
    SendLockReq {
        res: dclue_db::lock::ResourceId,
        master: u32,
        queue: bool,
    },
    WaitQueuedLock {
        res: dclue_db::lock::ResourceId,
        master: u32,
    },
    FailRetry,
    WriteLog,
    Finish {
        aborted: bool,
    },
}

pub(crate) struct Txn {
    #[allow(dead_code)]
    pub id: u64,
    pub node: u32,
    pub session: Option<u32>,
    pub thread: dclue_platform::ThreadId,
    pub prog: dclue_db::tpcc::TxnProgram,
    pub read_ts: u64,
    pub phase: Phase,
    pub cursor: Cursor,
    /// Instructions accumulated since the last block.
    pub acc: u64,
    /// Action to take when the running burst completes.
    pub block: Option<Block>,
    /// A queued local lock granted before its wait burst retired.
    pub early_grant: Option<dclue_db::lock::ResourceId>,
    pub op: Option<dclue_db::tpcc::PlannedOp>,
    /// `(page, needs-exclusive)` access list of the current op.
    pub pages: Vec<(PageKey, bool)>,
    pub page_idx: usize,
    pub lock_idx: usize,
    pub locks_held: Vec<(u32, dclue_db::lock::ResourceId)>,
    /// Every lock master this txn contacted (release targets).
    pub masters: Vec<u32>,
    pub wait_gen: u32,
    pub wait_started: Option<SimTime>,
    pub retries: u32,
    pub log_bytes: u64,
    pub started: SimTime,
    /// Connection-pool queueing delay accrued before the request was
    /// sent (aggregate client model): folded into the measured response
    /// time at finish. Always zero under the exact model.
    pub queued: Duration,
}

// ---------------------------------------------------------------------
// World
// ---------------------------------------------------------------------

/// The entire simulated cluster: the deterministic scheduler plus one
/// typed component per subsystem (see [`crate::components`]).
pub struct World {
    pub cfg: ClusterConfig,
    pub(crate) paths: PathLengths,
    pub(crate) heap: EventHeap<Ev>,
    pub(crate) now: SimTime,
    pub(crate) rng: SimRng,
    /// The cluster/DB-node components: one per server.
    pub(crate) nodes: Vec<Node>,
    pub(crate) db: Database,
    pub(crate) warehouses: u32,
    /// The coherence/concurrency-control protocol in force. Both
    /// implementations are zero-sized, so the `&'static` trait object
    /// costs one pointer and never allocates.
    pub(crate) protocol: &'static dyn CoherenceProtocol,
    /// Per-node read-lease tables (`page -> expiry`), used only by
    /// `ProtocolKind::MvccReadLease`; left empty under cache fusion so
    /// the hot paths pay nothing for the feature.
    pub(crate) leases: Vec<FxHashMap<PageKey, SimTime>>,
    /// Network fabric: TCP state, conn tables, QoS controller.
    pub(crate) fabric: FabricPort,
    /// Node → rack map from the topology layer (drives rack-aligned
    /// windowed partitioning and the report's path stats).
    pub(crate) placement: crate::topology::Placement,
    /// Platform/CPU: the deferred-action table.
    pub(crate) platform: PlatformPort,
    /// Storage: SAN array, iSCSI initiator state, commit logs.
    pub(crate) storage: StoragePort,
    /// Workload driver: client terminals and FTP cross traffic.
    pub(crate) driver: WorkloadDriver,
    pub(crate) txns: FxHashMap<u64, Txn>,
    pub(crate) next_txn: u64,
    pub(crate) collect: Collector,
    pub(crate) measuring: bool,

    versions_at_warmup: u64,
    /// Sampled (time_s, committed-so-far, mean live threads) triples.
    pub(crate) timeline: Vec<(f64, u64, f64)>,
    /// Drains the configured fault plan in clock order.
    pub(crate) fault_sched: FaultScheduler,
    /// Per-node liveness; a crashed node drops all IPC and client work.
    pub(crate) alive: Vec<bool>,
    /// Buffer-cache capacity per node (to rebuild after a crash).
    pub(crate) buf_capacity: usize,
    done: bool,
}

impl World {
    /// Build the whole cluster per the configuration.
    pub fn new(cfg: ClusterConfig) -> Self {
        Self::new_inner(cfg, None)
    }

    /// Build a *group world* for the windowed intra-run engine: a full
    /// replica of the cluster (identical topology, connections and RNG
    /// stream — so every id allocation matches the serial world) that
    /// *drives* only the client sessions homed on group `group`'s node
    /// block. Must be called on the thread that will run the world, so
    /// the thread-local invariant checks arm where the events dispatch.
    pub(crate) fn new_group(cfg: ClusterConfig, group: u32, groups: u32) -> Self {
        Self::new_inner(cfg, Some((group, groups)))
    }

    fn new_inner(cfg: ClusterConfig, xg: Option<(u32, u32)>) -> Self {
        // Arm the stateful invariant checks (debug/test builds) before
        // any setup traffic: connection-open SYNs emitted here must be
        // in the conservation ledger when `run` later delivers them.
        dclue_trace::invariant::arm();
        let rng = SimRng::new(cfg.seed);
        let scale = cfg.tpcc_scale();
        let warehouses = scale.warehouses;
        let mut db = Database::build(scale.clone());
        db.coarse_locks = cfg.coarse_locks;
        let paths = PathLengths::for_config(&cfg);

        // ---- topology ----
        let discipline = match cfg.qos {
            QosPolicy::AllBestEffort => dclue_net::device::Discipline::Fifo,
            QosPolicy::FtpPriority => dclue_net::device::Discipline::Priority,
            QosPolicy::FtpWfq { af_weight } => dclue_net::device::Discipline::Wfq { af_weight },
            // The controller starts generous and earns its keep.
            QosPolicy::Autonomic { .. } => dclue_net::device::Discipline::Wfq { af_weight: 0.6 },
        };
        let drop = if cfg.red {
            dclue_net::device::DropPolicy::Red {
                min_th: 24,
                max_th: 72,
                max_p: 0.1,
            }
        } else {
            dclue_net::device::DropPolicy::TailDrop
        };
        let policy = dclue_net::device::PortPolicy { discipline, drop };
        let crate::topology::BuiltTopology {
            net,
            node_hosts,
            client_hosts,
            ftp_client,
            ftp_server,
            trunks,
            trunk_tiers,
            placement,
        } = crate::topology::Topology::from_config(&cfg).build(&cfg, policy);

        // ---- nodes ----
        let total_pages = db.total_pages();
        let per_node_share = (total_pages / cfg.nodes as u64).max(64);
        let buf_capacity = ((per_node_share as f64 * cfg.buffer_fraction) as usize).max(256);
        let mut nodes = Vec::new();
        for n in 0..cfg.nodes {
            let mut cpu = Cpu::new(cfg.platform.clone());
            let mut platform = cfg.platform.clone();
            if !cfg.thrash_model {
                platform.thrash_slope = 0.0;
                platform.cs_slope_cycles = 0.0;
                cpu = Cpu::new(platform);
            }
            cpu.set_mpi_scale(1.0 + 0.3 * (1.0 - cfg.affinity));
            let mut disk_cfg = cfg.disk.clone();
            disk_cfg.elevator = cfg.elevator;
            let data_disks = (0..cfg.data_spindles)
                .map(|_| Disk::new(disk_cfg.clone()))
                .collect();
            let log_disks: Vec<Disk> = (0..cfg.log_spindles)
                .map(|_| Disk::new(disk_cfg.clone()))
                .collect();
            let log_lba = vec![0; log_disks.len()];
            nodes.push(Node {
                id: n,
                host: node_hosts[n as usize],
                cpu,
                buffer: BufferCache::new(buf_capacity),
                locks: LockTable::new(),
                directory: Directory::new(),
                data_disks,
                log_disks,
                log_lba,
                log_rr: 0,
                pending_pages: BTreeMap::new(),
                resident_txns: 0,
            });
        }

        let san_disks = match cfg.storage {
            StorageMode::San { .. } => {
                let mut disk_cfg = cfg.disk.clone();
                disk_cfg.elevator = cfg.elevator;
                (0..cfg.data_spindles * cfg.nodes)
                    .map(|_| Disk::new(disk_cfg.clone()))
                    .collect()
            }
            StorageMode::Distributed => Vec::new(),
        };
        let gen = TpccGenerator::new(scale, rng.derive(1));
        let ftp_pairs = vec![FtpPair {
            client: ftp_client,
            server: ftp_server,
            generator: FtpGenerator::new(cfg.ftp_offered_bps, rng.derive(2)),
            tokens: cfg.ftp_policer.map(|p| p.burst_bytes).unwrap_or(0.0),
            tokens_at: SimTime::ZERO,
            active: 0,
            denied: 0,
        }];

        // ---- sessions ----
        let (sessions, agg, pools) = match cfg.client_model {
            ClientModel::Exact => {
                let n_sessions = cfg.nodes as u64 * cfg.clients_per_node as u64;
                let sessions = (0..n_sessions)
                    .map(|i| ClientSession {
                        home_w: (i * warehouses as u64 / n_sessions) as u32 + 1,
                        client_host: client_hosts[(i % client_hosts.len() as u64) as usize],
                        node: 0,
                        conn: None,
                        queue: VecDeque::new(),
                        inflight: None,
                        agg_home: None,
                        queue_delay: Duration::ZERO,
                    })
                    .collect();
                (sessions, Vec::new(), Vec::new())
            }
            ClientModel::Aggregate => {
                // No per-terminal state: each node carries its exact
                // share of the population (the closed form counts the
                // terminals the exact layout would home there, so
                // windowed group worlds agree without enumerating).
                let total = cfg.nodes as u64 * cfg.clients_per_node as u64;
                let agg: Vec<crate::components::driver::AggPopulation> = (0..cfg.nodes)
                    .map(|k| {
                        let population =
                            dclue_workload::node_population(k, cfg.nodes, warehouses, total);
                        let (w_lo, w_hi) =
                            dclue_workload::node_warehouse_span(k, cfg.nodes, warehouses);
                        // Per-warehouse terminal counts of the exact
                        // layout, so dispatch sampling preserves its
                        // warehouse stratification (driver::free_w).
                        let free_w: Vec<u64> = if w_lo > w_hi {
                            Vec::new()
                        } else {
                            (w_lo..=w_hi)
                                .map(|w| dclue_workload::warehouse_population(w, warehouses, total))
                                .collect()
                        };
                        debug_assert_eq!(free_w.iter().sum::<u64>(), population);
                        crate::components::driver::AggPopulation {
                            population,
                            dormant: population,
                            thinking: 0,
                            head: None,
                            inflight: 0,
                            wake_gen: 0,
                            w_lo,
                            w_hi,
                            free_w,
                        }
                    })
                    .collect();
                let pools = (0..cfg.nodes)
                    .map(|_| (0..cfg.nodes).map(|_| Vec::new()).collect())
                    .collect();
                (Vec::new(), agg, pools)
            }
        };

        let mut world = World {
            paths,
            // Sized for the steady-state pending-event population of a
            // mid-size cluster; avoids the early growth reallocations.
            heap: EventHeap::with_capacity(4096),
            now: SimTime::ZERO,
            rng,
            nodes,
            db,
            warehouses,
            protocol: crate::protocol::resolve(cfg.protocol),
            leases: match cfg.protocol {
                ProtocolKind::MvccReadLease => {
                    vec![FxHashMap::default(); cfg.nodes as usize]
                }
                ProtocolKind::CacheFusion2pl => Vec::new(),
            },
            fabric: FabricPort {
                net,
                cluster_conns: ConnTable::new(cfg.nodes),
                conn_info: ConnInfoTable::new(),
                msg_tags: FxHashMap::default(),
                next_msg: 0,
                trunks,
                trunk_tiers,
                trunk_bytes_at_warmup: [0, 0],
                client_hosts,
                qos_ctl: (0.0, 0.0, 0.6),
                xg: xg.map(|(g, gs)| crate::components::fabric::XgCtx {
                    my_group: g,
                    groups: gs,
                    nodes: cfg.nodes,
                    racks: placement.racks,
                    outbox: Vec::new(),
                    next_seq: 0,
                    uplink_free: vec![SimTime::ZERO; cfg.nodes as usize],
                    downlink_free: vec![SimTime::ZERO; cfg.nodes as usize],
                }),
            },
            placement,
            platform: PlatformPort {
                actions: FxHashMap::default(),
                next_action: 0,
            },
            storage: StoragePort {
                san_disks,
                san_rr: 0,
                iscsi_gate: (0..cfg.nodes).map(|_| StallGate::default()).collect(),
                iscsi_retry: RetryPolicy::default(),
                iscsi_inflight: FxHashMap::default(),
                log_reqs: FxHashMap::default(),
                next_req: 0,
                log_batches: (0..cfg.nodes).map(|_| LogBatch::default()).collect(),
            },
            driver: WorkloadDriver {
                sessions,
                gen,
                ftp_pairs,
                agg,
                pools,
                free_slots: Vec::new(),
                next_local_slot: 0,
            },
            txns: FxHashMap::default(),
            next_txn: 0,
            collect: Collector::default(),
            measuring: false,
            versions_at_warmup: 0,
            timeline: Vec::new(),
            fault_sched: FaultScheduler::new(&cfg.fault_plan),
            alive: vec![true; cfg.nodes as usize],
            buf_capacity,
            done: false,
            cfg,
        };
        if world.fabric.xg.is_some() {
            // Windowed mode: record local version-store writes so each
            // barrier can replay them into the peer groups' replicas of
            // the logically-shared store.
            world.db.versions.enable_replication();
        }
        world.prewarm();
        // Windowed mode: de-correlate each group's workload sampling.
        // Every replica is built from `cfg.seed` so topology, prewarm
        // residency and the seeded directory agree across worlds — but
        // if the *workload* streams stayed identical too, the G groups
        // would draw the same think-time/item/customer sequences for
        // their own session blocks, i.e. the cluster would sample G
        // duplicated copies of one random trace. That measurably shrinks
        // the distinct cold-page set (fewer first-touch disk reads than
        // an independent 480-terminal population produces). Re-derive
        // the event-time RNG and the TPC-C generator per group *after*
        // prewarm so shared init state stays bit-identical while the
        // terminals sample independently, like they do in one world.
        if let Some((g, groups)) = xg {
            if groups > 1 {
                // `SimRng::derive` mixes only its tag (streams are stable
                // across seeds), so salt the config seed directly for the
                // event-time RNG and give the generator a distinct fixed
                // stream per group, mirroring serial's fixed `derive(1)`.
                let salt = (g as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                world.rng = SimRng::new(world.cfg.seed ^ salt);
                let scale = world.cfg.tpcc_scale();
                world.driver.gen = TpccGenerator::new(scale, world.rng.derive(1000 + g as u64));
            }
        }
        world.init_schedule();
        world
    }

    /// Pre-warm every node's buffer cache with its partition's pages
    /// (coldest installed first so LRU keeps the hottest) and seed the
    /// fusion directory with the resulting residency. The paper measures
    /// steady state; starting stone-cold at 100x-scaled disk speeds
    /// would spend the whole run faulting the working set in.
    fn prewarm(&mut self) {
        use dclue_db::schema as sch;
        let n = self.cfg.nodes;
        let scale = self.db.scale.clone();
        let per = self.warehouses.div_ceil(n);
        for node in 0..n {
            let w_lo = node * per + 1;
            let w_hi = ((node + 1) * per).min(self.warehouses);
            if w_lo > w_hi {
                continue;
            }
            let mut keys: Vec<PageKey> = Vec::new();
            // --- cold bulk data: customer, stock ---
            for table in [Table::Customer, Table::Stock] {
                let rows_per_wh: u64 = match table {
                    Table::Customer => {
                        scale.districts_per_wh as u64 * scale.customers_per_district as u64
                    }
                    _ => scale.items as u64,
                };
                let rpp = table.rows_per_page();
                let lo = (w_lo as u64 - 1) * rows_per_wh / rpp;
                let hi = (w_hi as u64) * rows_per_wh / rpp;
                for p in lo..=hi {
                    keys.push(PageKey::data(table, p));
                }
            }
            // --- growing tables: pages in use per warehouse ---
            for table in [Table::Order, Table::OrderLine, Table::NewOrder] {
                let rows_per_wh: u64 = scale.initial_orders_per_district as u64
                    * scale.districts_per_wh as u64
                    * if table == Table::OrderLine { 10 } else { 1 };
                let rpp = table.rows_per_page();
                for w in w_lo..=w_hi {
                    let pages = rows_per_wh.div_ceil(rpp) + 1;
                    for p in 0..pages {
                        keys.push(PageKey::data(
                            table,
                            (w as u64 - 1) * dclue_db::database::WH_PAGE_SPAN + p,
                        ));
                    }
                }
            }
            // --- index paths (sampled traces seed the hot levels) ---
            let mut trace = Vec::new();
            let push_trace = |keys: &mut Vec<PageKey>, table: Table, trace: &Vec<u32>| {
                for &id in trace {
                    keys.push(PageKey::index(table, id));
                }
            };
            for w in w_lo..=w_hi {
                for d in 1..=scale.districts_per_wh {
                    trace.clear();
                    self.db
                        .index(Table::District)
                        .get(sch::district_key(w, d), &mut trace);
                    push_trace(&mut keys, Table::District, &trace);
                    let (olo, ohi) = sch::order_key_range(w, d);
                    trace.clear();
                    self.db
                        .index(Table::Order)
                        .last_in_range(olo, ohi, &mut trace);
                    push_trace(&mut keys, Table::Order, &trace);
                    trace.clear();
                    self.db
                        .index(Table::NewOrder)
                        .first_in_range(olo, ohi, &mut trace);
                    push_trace(&mut keys, Table::NewOrder, &trace);
                    trace.clear();
                    let l0 = sch::order_line_key(w, d, 1, 0);
                    let l1 = sch::order_line_key(w, d, scale.initial_orders_per_district, 15);
                    let mut out = Vec::new();
                    self.db
                        .index(Table::OrderLine)
                        .range(l0, l1, 64, &mut out, &mut trace);
                    push_trace(&mut keys, Table::OrderLine, &trace);
                    let cstep = (scale.customers_per_district / 16).max(1);
                    let mut c = 1;
                    while c <= scale.customers_per_district {
                        trace.clear();
                        self.db
                            .index(Table::Customer)
                            .get(sch::customer_key(w, d, c), &mut trace);
                        push_trace(&mut keys, Table::Customer, &trace);
                        c += cstep;
                    }
                }
                let istep = (scale.items / 32).max(1);
                let mut i = 1;
                while i <= scale.items {
                    trace.clear();
                    self.db
                        .index(Table::Stock)
                        .get(sch::stock_key(w, i), &mut trace);
                    push_trace(&mut keys, Table::Stock, &trace);
                    i += istep;
                }
                trace.clear();
                self.db
                    .index(Table::Warehouse)
                    .get(sch::wh_key(w), &mut trace);
                push_trace(&mut keys, Table::Warehouse, &trace);
            }
            // --- hottest last: item (all nodes), district, warehouse ---
            let istep = (scale.items as u64 / 64).max(1);
            let mut i = 1;
            while i <= scale.items as u64 {
                trace.clear();
                self.db.index(Table::Item).get(i, &mut trace);
                push_trace(&mut keys, Table::Item, &trace);
                i += istep;
            }
            let item_pages = (scale.items as u64).div_ceil(Table::Item.rows_per_page());
            for p in 0..item_pages {
                keys.push(PageKey::data(Table::Item, p));
            }
            {
                let rpp = Table::District.rows_per_page();
                let lo = (w_lo as u64 - 1) * scale.districts_per_wh as u64 / rpp;
                let hi = (w_hi as u64) * scale.districts_per_wh as u64 / rpp;
                for p in lo..=hi {
                    keys.push(PageKey::data(Table::District, p));
                }
            }
            {
                let rpp = Table::Warehouse.rows_per_page();
                for p in (w_lo as u64 - 1) / rpp..=(w_hi as u64 - 1) / rpp {
                    keys.push(PageKey::data(Table::Warehouse, p));
                }
            }
            let buf = &mut self.nodes[node as usize].buffer;
            for key in keys {
                if !buf.contains(key) {
                    buf.install(key, false);
                }
            }
        }
        // Seed the directory from the final residency, then zero the
        // warm-up accounting noise.
        for node in 0..n {
            let mut resident: Vec<PageKey> =
                self.nodes[node as usize].buffer.resident_keys().collect();
            // resident_keys walks a HashMap; sort so directory holder
            // lists come out identical across runs.
            resident.sort_unstable_by_key(|k| (k.space, k.page));
            for key in resident {
                let home = self.page_home(key);
                self.nodes[home as usize].directory.add_holder(key, node);
            }
        }
        for node in &mut self.nodes {
            node.buffer.stats = Default::default();
        }
    }

    fn init_schedule(&mut self) {
        // Open the two per-pair connections (IPC + storage).
        for a in 0..self.cfg.nodes {
            for bn in (a + 1)..self.cfg.nodes {
                for class in [ConnClass::Ipc, ConnClass::Storage] {
                    let (ha, hb) = (self.nodes[a as usize].host, self.nodes[bn as usize].host);
                    let cfg = self.tcp_config(true);
                    let conn = self
                        .with_net(|net, ob| net.open_connection(ha, hb, Dscp::BestEffort, cfg, ob));
                    self.fabric.cluster_conns.insert(a, bn, class, conn);
                    self.fabric
                        .conn_info
                        .insert(conn, ConnKind::Cluster { a, b: bn, class });
                }
            }
        }
        // Stagger client session starts across warm-up plus a think
        // time, so the cluster ramps up rather than being hit by a
        // thundering herd that tips it into thrash before measurement.
        // A group world draws the jitter for *every* session (keeping
        // its RNG stream aligned with the serial world) but schedules
        // only the sessions homed on its own node block.
        let span = (self.cfg.warmup.nanos()).max(1);
        for s in 0..self.driver.sessions.len() {
            let jitter = Duration::from_nanos(self.rng.uniform(1_000_000, span))
                + self.rng.exponential(self.cfg.think_time);
            if let Some(xg) = &self.fabric.xg {
                let home = dclue_workload::home_node(
                    self.driver.sessions[s].home_w,
                    self.warehouses,
                    self.cfg.nodes,
                );
                if crate::components::fabric::xg_group_of(home, xg.nodes, xg.groups, xg.racks) != xg.my_group
                {
                    continue;
                }
            }
            self.heap.push(
                SimTime::ZERO + jitter,
                Ev::ClientThink { session: s as u32 },
            );
        }
        // Aggregate client model: reproduce the exact driver's ramp —
        // per-terminal first arrivals are Uniform[0, warmup] + Exp(think)
        // above, so the population joins the closed loop linearly over
        // the warm-up span. A bounded number of activation ticks per
        // node (dormant → thinking) reproduces that transient in O(1)
        // events regardless of population; the Exp(think) component is
        // the superposed process's own first arrival. A group world
        // activates only the populations of its own node block.
        if self.cfg.client_model == ClientModel::Aggregate {
            let ramp = self.cfg.warmup.nanos().max(1);
            for k in 0..self.cfg.nodes {
                if self.xg_is_foreign(k) {
                    continue;
                }
                let pop = self.driver.agg[k as usize].population;
                let ticks = pop.min(64);
                let mut activated = 0u64;
                for i in 1..=ticks {
                    let upto = pop * i / ticks;
                    let count = upto - activated;
                    activated = upto;
                    if count == 0 {
                        continue;
                    }
                    self.heap.push(
                        SimTime::ZERO + Duration::from_nanos(ramp * i / ticks),
                        Ev::AggActivate { node: k, count },
                    );
                }
            }
        }
        // FTP starts halfway through warm-up. Group 0 owns the single
        // FTP pair in windowed mode (its endpoints are client hosts,
        // not nodes, so any one group can drive it).
        let drives_ftp = self.fabric.xg.as_ref().is_none_or(|xg| xg.my_group == 0);
        if self.cfg.ftp_offered_bps > 0.0 && drives_ftp {
            self.heap.push(
                SimTime::ZERO + Duration::from_nanos(span),
                Ev::FtpNext { pair: 0 },
            );
        }
        // Fault injection, if configured.
        if let Some(at) = self.cfg.chaos_ipc_reset_at {
            self.heap.push(SimTime::ZERO + at, Ev::Chaos);
        }
        if let Some(t) = self.fault_sched.peek_next() {
            self.heap.push(t, Ev::Fault);
        }
        // Housekeeping.
        self.heap
            .push(SimTime::ZERO + Duration::from_millis(500), Ev::Sample);
        self.heap
            .push(SimTime::ZERO + self.cfg.warmup, Ev::EndWarmup);
        self.heap.push(
            SimTime::ZERO + self.cfg.warmup + self.cfg.measure,
            Ev::EndRun,
        );
    }

    /// Run to completion and report.
    pub fn run(&mut self) -> Report {
        while let Some((t, ev)) = self.heap.pop() {
            dclue_trace::invariant::clock(dclue_trace::invariant::Clock::Dispatch, 0, t.0);
            dclue_trace::trace_event!(Sim, t.0, "dispatch", self.heap.total_popped());
            self.now = t;
            if matches!(ev, Ev::EndRun) {
                self.done = true;
                break;
            }
            self.dispatch(ev);
        }
        debug_assert!(self.done, "event queue drained before EndRun");
        let report = self.build_report();
        dclue_trace::invariant::disarm();
        report
    }

    // ------------------------------------------------------------------
    // Windowed intra-run execution (driven by `crate::windowed`)
    // ------------------------------------------------------------------

    /// Process every pending event strictly before `limit`, then stop.
    /// The windowed driver calls this once per window between barriers.
    /// Returns early (with `done()` set) when `EndRun` pops, matching
    /// `run`'s semantics of abandoning in-flight work at end of run.
    pub(crate) fn run_window(&mut self, limit: SimTime) {
        if self.done {
            return;
        }
        while let Some((t, ev)) = self.heap.pop_until(limit) {
            dclue_trace::invariant::clock(dclue_trace::invariant::Clock::Dispatch, 0, t.0);
            dclue_trace::trace_event!(Sim, t.0, "dispatch", self.heap.total_popped());
            self.now = t;
            if matches!(ev, Ev::EndRun) {
                self.done = true;
                return;
            }
            self.dispatch(ev);
        }
    }

    /// Whether this world has reached `EndRun`.
    pub(crate) fn is_done(&self) -> bool {
        self.done
    }

    /// Drain the cross-group messages staged during the last window.
    pub(crate) fn take_xg_outbox(&mut self) -> Vec<crate::components::fabric::XgMsg> {
        let Some(xg) = self.fabric.xg.as_ref() else {
            return Vec::new();
        };
        // Broadcast this window's version-store writes so every group's
        // replica of the logically-shared store converges (see the
        // `XgPayload::Versions` docs for why this carries no wire cost).
        let (my, groups) = (xg.my_group, xg.groups);
        let writes = self.db.versions.take_repl_log();
        if !writes.is_empty() {
            for g in 0..groups {
                if g != my {
                    self.xg_stage_now(
                        g,
                        0,
                        crate::components::fabric::XgPayload::Versions {
                            writes: writes.clone(),
                        },
                    );
                }
            }
        }
        match &mut self.fabric.xg {
            Some(xg) => std::mem::take(&mut xg.outbox),
            None => Vec::new(),
        }
    }

    /// Inject a cross-group message merged at the window barrier. The
    /// delivery time is clamped to the *next* window's start so the
    /// conservative lookahead holds for any window width: nothing is
    /// ever scheduled into a window a group has already executed.
    pub(crate) fn inject_xg(&mut self, floor: SimTime, m: crate::components::fabric::XgMsg) {
        let mut at = m.at.max(floor);
        // Serialize onto the destination node's inbound host link.
        // Each sending world packet-simulates its *own* traffic to this
        // node on a private replica of that link; the merge point is
        // the only place all inbound streams meet, so the shared-link
        // FIFO queuing between them is applied here (injection order is
        // the deterministic merge order, so this stays reproducible).
        let dest_node = match &m.payload {
            crate::components::fabric::XgPayload::Ipc { to, .. } => Some(*to),
            crate::components::fabric::XgPayload::ClientReq { node, .. } => Some(*node),
            // Responses land on unmodelled client hosts: no shared link.
            // ClientDone is a tiny control notification to the mirror;
            // Versions replays shared-memory state (no wire at all).
            crate::components::fabric::XgPayload::ClientResp { .. }
            | crate::components::fabric::XgPayload::ClientDone { .. }
            | crate::components::fabric::XgPayload::Versions { .. } => None,
        };
        if let (Some(n), Some(xg)) = (dest_node, self.fabric.xg.as_mut()) {
            let tx = Duration::from_secs_f64(m.bytes as f64 * 8.0 / self.cfg.link_bw);
            let free = &mut xg.downlink_free[n as usize];
            at = at.max(*free);
            *free = at + tx;
        }
        self.heap.push(at, Ev::XgIpc { msg: m.payload });
    }

    /// The smallest idle-path latency of a control-size IPC message
    /// between nodes of *different* groups — the provable lower bound
    /// on cross-group reaction time that makes a window of this width
    /// conservative. Deterministic, so every group computes the same
    /// value independently.
    pub(crate) fn min_xg_latency(&self, groups: u32) -> Duration {
        let n = self.cfg.nodes;
        let racks = self.placement.racks;
        let ctl = crate::ipc::CTL_BYTES;
        let mut min: Option<Duration> = None;
        for a in 0..n {
            for b in 0..n {
                if a == b
                    || crate::components::fabric::xg_group_of(a, n, groups, racks)
                        == crate::components::fabric::xg_group_of(b, n, groups, racks)
                {
                    continue;
                }
                let (ha, hb) = (self.nodes[a as usize].host, self.nodes[b as usize].host);
                if let Some((tx, rest)) = self.fabric.net.path_profile(ha, hb, ctl, 1) {
                    let lat = tx + rest;
                    min = Some(match min {
                        Some(m) if m <= lat => m,
                        _ => lat,
                    });
                }
            }
        }
        min.unwrap_or(Duration::from_millis(1))
    }

    /// Fold group world `other` into `self` (which must be group 0)
    /// after every group reached `EndRun`: counters and distributions
    /// merge, the timeline sums entrywise at its aligned 500 ms ticks,
    /// and `other`'s *driven* nodes replace our idle replicas so the
    /// per-node CPU/disk/buffer statistics in the report are the real
    /// ones. Call once per foreign group, then `build_report` as usual.
    pub(crate) fn absorb_group(&mut self, other: &mut World) {
        let Some(oxg) = other.fabric.xg.as_ref() else {
            return;
        };
        let (g, gs, n, racks) = (oxg.my_group, oxg.groups, oxg.nodes, oxg.racks);
        self.collect.merge(&other.collect);
        for (mine, theirs) in self.timeline.iter_mut().zip(other.timeline.iter()) {
            debug_assert_eq!(mine.0, theirs.0, "misaligned timeline ticks");
            mine.1 += theirs.1;
            mine.2 += theirs.2;
        }
        for node in 0..n {
            if crate::components::fabric::xg_group_of(node, n, gs, racks) == g {
                std::mem::swap(
                    &mut self.nodes[node as usize],
                    &mut other.nodes[node as usize],
                );
            }
        }
        // FTP lives on group 0; foreign replicas carry no denials.
        debug_assert!(g != 0);
    }

    /// Build the merged report (windowed driver only; serial runs get
    /// theirs from `run`).
    pub(crate) fn into_report(mut self) -> Report {
        self.build_report()
    }

    /// The node → rack placement the topology layer compiled.
    pub fn placement(&self) -> &crate::topology::Placement {
        &self.placement
    }

    /// Events dispatched by the engine so far — the DES throughput
    /// numerator the self-benchmark divides by wall time.
    pub fn events_processed(&self) -> u64 {
        self.heap.total_popped()
    }

    /// Events scheduled so far (processed plus still pending).
    pub fn events_scheduled(&self) -> u64 {
        self.heap.total_pushed()
    }

    /// Segment-train fast-path telemetry (all zero in exact mode).
    pub fn train_stats(&self) -> dclue_net::TrainStats {
        self.fabric.net.train_stats
    }

    /// Peak size of the session-slot table: O(terminals) under the
    /// exact client model, O(active transactions) under aggregate
    /// (slots are recycled, the table never shrinks — this is the
    /// driver-memory headline the self-benchmark records).
    pub fn driver_slots(&self) -> usize {
        self.driver.sessions.len()
    }

    /// Aggregate client model: per-node `(population, thinking,
    /// queued-head, inflight)` counters (empty under exact). The
    /// closed-loop invariant `population == thinking + head + inflight`
    /// holds at every dispatch edge.
    pub fn agg_counters(&self) -> Vec<(u64, u64, u64, u64)> {
        self.driver
            .agg
            .iter()
            .map(|a| {
                (
                    a.population,
                    a.thinking,
                    a.head.is_some() as u64,
                    a.inflight,
                )
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Component accessors
    // ------------------------------------------------------------------

    /// The network-fabric component: conn tables, QoS controller state.
    pub fn fabric(&self) -> &FabricPort {
        &self.fabric
    }

    /// The logical database shared by every node.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The coherence/concurrency-control protocol in force.
    pub fn protocol(&self) -> &'static dyn CoherenceProtocol {
        self.protocol
    }

    // ------------------------------------------------------------------
    // Event dispatch and outbox plumbing
    // ------------------------------------------------------------------

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::Net(e) => {
                self.with_net(|net, ob| net.handle(e, ob));
            }
            Ev::Cpu { node, ev } => {
                let mut ob = Outbox::new(self.now);
                self.nodes[node as usize].cpu.handle(ev, &mut ob);
                self.absorb_cpu(node, ob);
            }
            Ev::Disk {
                node,
                kind,
                disk,
                ev,
            } => {
                let mut ob = Outbox::new(self.now);
                let n = &mut self.nodes[node as usize];
                match kind {
                    DiskKind::Data => n.data_disks[disk as usize].handle(ev, &mut ob),
                    DiskKind::Log => n.log_disks[disk as usize].handle(ev, &mut ob),
                }
                self.absorb_disk(node, kind, disk, ob);
            }
            Ev::San { disk, ev } => {
                let mut ob = Outbox::new(self.now);
                self.storage.san_disks[disk as usize].handle(ev, &mut ob);
                self.absorb_san(disk, ob);
            }
            Ev::SanSubmit { disk, req } => {
                let mut ob = Outbox::new(self.now);
                self.storage.san_disks[disk as usize].submit(req, &mut ob);
                self.absorb_san(disk, ob);
            }
            Ev::DelayedAction { id } => self.run_action_direct(id),
            Ev::LogFlush { node, gen } => self.log_flush(node, gen),
            Ev::Chaos => self.chaos_reset_one_ipc(),
            Ev::Fault => self.fault_tick(),
            Ev::IscsiTimeout {
                node,
                page,
                attempt,
            } => self.iscsi_timeout(node, page, attempt),
            Ev::IpcReconnect {
                a,
                b,
                class,
                attempt,
            } => self.ipc_reconnect(a, b, class, attempt),
            Ev::ClientThink { session } => self.client_begin(session),
            Ev::AggWake { node, gen } => self.agg_wake(node, gen),
            Ev::AggActivate { node, count } => self.agg_activate(node, count),
            Ev::FtpNext { pair } => self.ftp_next(pair),
            Ev::TxnRetry { txn } => self.txn_retry(txn),
            Ev::LockWaitTimeout { txn, gen } => self.lock_wait_timeout(txn, gen),
            Ev::Sample => {
                self.sample();
                self.heap
                    .push(self.now + Duration::from_millis(500), Ev::Sample);
            }
            Ev::EndWarmup => self.end_warmup(),
            Ev::EndRun => unreachable!("handled in run()"),
            Ev::XgIpc { msg } => self.xg_deliver(msg),
        }
    }

    /// Deliver a cross-group message injected at a window barrier.
    /// Mirrors the receive side of what `on_message` would have done:
    /// the wire already "happened" analytically, so only the host-side
    /// processing charges (and the protocol consequences) remain.
    fn xg_deliver(&mut self, msg: crate::components::fabric::XgPayload) {
        use crate::components::fabric::XgPayload;
        match msg {
            XgPayload::Ipc { to, msg } => {
                if !self.alive[to as usize] {
                    return; // delivered to a crashed node: lost
                }
                let bytes = msg.wire_bytes();
                let mut instr = self.paths.recv_instr(bytes);
                match &msg {
                    IpcMsg::IscsiData { .. } => {
                        instr += self.paths.iscsi_initiator_per_io
                            + self.paths.iscsi_initiator_per_kb * bytes.div_ceil(1024);
                    }
                    IpcMsg::IscsiRead { .. } | IpcMsg::IscsiWrite { .. } => {
                        instr += self.paths.iscsi_target_per_io
                            + self.paths.iscsi_target_per_kb * bytes.div_ceil(1024);
                    }
                    _ => {}
                }
                let bus = self.paths.recv_bus_bytes(bytes);
                self.nodes[to as usize].cpu.account_bus(self.now, bus);
                self.charge_then(
                    to,
                    instr,
                    crate::components::platform::Action::HandleIpc { node: to, msg },
                );
            }
            XgPayload::ClientReq {
                session,
                node,
                input,
                queued,
            } => {
                // Aggregate model: mirror slots materialize on first
                // contact (the home world mints slot ids dynamically).
                self.ensure_slot(session);
                if !self.alive[node as usize] {
                    // Landed on a crashed node: the serial engine
                    // resets the client connection; the reset rides
                    // back as a failed response (RST-sized frame, no
                    // NIC serialization from a dead host).
                    self.xg_client_reset(session, node);
                    return;
                }
                // Ensure this executing world holds a mirror connection
                // for the shipped session, so the response rides the
                // real fabric (server-uplink contention included) and is
                // relayed home at delivery. Reused across requests of
                // the same business transaction; reopened if the session
                // was re-routed to a different node of this group.
                let (client_host, cur_conn, cur_node) = {
                    let s = &self.driver.sessions[session as usize];
                    (s.client_host, s.conn, s.node)
                };
                if cur_conn.is_none() || cur_node != node {
                    if let Some(old) = cur_conn {
                        self.with_net(|net, ob| {
                            net.close_connection(old, dclue_net::types::Side::Opener, ob);
                            net.close_connection(old, dclue_net::types::Side::Acceptor, ob);
                        });
                    }
                    let server_host = self.nodes[node as usize].host;
                    let tcfg = self.tcp_config(false);
                    let conn = self.with_net(|net, ob| {
                        net.open_connection(
                            client_host,
                            server_host,
                            dclue_net::packet::Dscp::BestEffort,
                            tcfg,
                            ob,
                        )
                    });
                    self.fabric.conn_info.insert(
                        conn,
                        crate::components::fabric::ConnKind::Client { session },
                    );
                    self.driver.sessions[session as usize].conn = Some(conn);
                }
                let s = &mut self.driver.sessions[session as usize];
                s.node = node;
                s.inflight = Some(input);
                s.queue_delay = queued;
                let instr = self.paths.recv_instr(crate::ipc::CLIENT_REQ_BYTES)
                    + self.paths.client_req_parse;
                self.charge_then(
                    node,
                    instr,
                    crate::components::platform::Action::StartTxn { node, session },
                );
            }
            XgPayload::ClientResp { session, ok } => {
                if ok {
                    self.driver.sessions[session as usize].inflight = None;
                    self.client_got_response(session);
                } else if let Some(conn) = self.driver.sessions[session as usize].conn {
                    // Connection-reset equivalent from the executing
                    // world: abort this home world's client connection;
                    // `on_reset` abandons the business transaction and
                    // schedules the think-and-retry.
                    self.with_net(|net, ob| net.abort_connection(conn, ob));
                }
                // No home connection: the home side already reset
                // independently (stale notification) — ignore.
            }
            XgPayload::ClientDone { session } => {
                // The business transaction completed in its home world:
                // tear down this executing world's mirror connection.
                let s = &mut self.driver.sessions[session as usize];
                s.inflight = None;
                if let Some(conn) = s.conn.take() {
                    self.with_net(|net, ob| {
                        net.close_connection(conn, dclue_net::types::Side::Opener, ob);
                        net.close_connection(conn, dclue_net::types::Side::Acceptor, ob);
                    });
                }
            }
            XgPayload::Versions { writes } => {
                // Replay a peer group's version-store writes into this
                // world's replica of the logically-shared store. The
                // records are re-stamped from this store's clock domain
                // (per-world logical timestamps are not comparable);
                // in-flight snapshots opened before this barrier keep
                // read timestamps below the new stamps, exactly as they
                // would against writes that committed after them.
                for (table, row, row_bytes) in writes {
                    let ts = self.db.next_ts();
                    self.db.versions.apply_replicated(table, row, row_bytes, ts);
                }
                // Overflow-area pressure is handled by the periodic
                // sampler (same path as local writes).
            }
        }
    }

    /// Stage the connection-reset equivalent for a foreign session
    /// whose transaction (or request) died on this world's node.
    pub(crate) fn xg_client_reset(&mut self, session: u32, node: u32) {
        let Some(home_group) = self.xg_session_group(session) else {
            return;
        };
        self.driver.sessions[session as usize].inflight = None;
        let (fh, th) = (
            self.nodes[node as usize].host,
            self.driver.sessions[session as usize].client_host,
        );
        self.xg_stage(
            fh,
            th,
            None,
            home_group,
            64,
            crate::components::fabric::XgPayload::ClientResp { session, ok: false },
        );
    }

    // ------------------------------------------------------------------
    // Housekeeping
    // ------------------------------------------------------------------

    fn sample(&mut self) {
        // Time series for transient analysis (e.g. thrash onset).
        let threads = self
            .nodes
            .iter()
            .map(|n| n.cpu.live_threads() as f64)
            .sum::<f64>()
            / self.nodes.len() as f64;
        self.timeline
            .push((self.now.as_secs_f64(), self.collect.committed, threads));
        self.gauge_sample(threads);
        self.autonomic_qos_step();
        self.redrive_stale_page_waits();
        // MVCC pruning: nothing older than the oldest active snapshot is
        // reachable.
        let watermark = self
            .txns
            .values()
            .map(|t| t.read_ts)
            .min()
            .unwrap_or_else(|| self.db.current_ts());
        self.db.versions.prune(watermark.saturating_sub(1));
        // Version-area pressure: steal unpinned buffer pages.
        if self.cfg.mvcc && self.db.versions.pressure() {
            for n in 0..self.nodes.len() {
                let stolen = self.nodes[n].buffer.steal(16);
                let bytes = stolen.len() as u64 * dclue_db::schema::PAGE_BYTES;
                for ev in stolen {
                    self.page_evicted(n as u32, ev);
                }
                self.db.versions.add_capacity(bytes);
            }
        }
    }

    /// Publish the periodic gauge snapshot to the metrics registry.
    /// Free when the registry is compiled out or not enabled.
    fn gauge_sample(&mut self, threads: f64) {
        if !dclue_trace::ENABLED || !dclue_trace::metrics::enabled() {
            return;
        }
        dclue_trace::metric_gauge!("core.committed", self.collect.committed);
        dclue_trace::metric_gauge!("core.live_txns", self.txns.len());
        dclue_trace::metric_gauge!("platform.threads_avg", threads);
        dclue_trace::metric_max!(
            "sim.heap_pending_max",
            self.heap.total_pushed() - self.heap.total_popped()
        );
        let lock_entries: usize = self.nodes.iter().map(|n| n.locks.live_entries()).sum();
        dclue_trace::metric_max!("db.lock_entries_max", lock_entries);
        let port_q = self
            .fabric
            .net
            .links()
            .iter()
            .map(|l| l.ports[0].queued().max(l.ports[1].queued()))
            .max()
            .unwrap_or(0);
        dclue_trace::metric_max!("net.port_queue_max", port_q);
    }

    /// Re-drive fusion protocols whose responses were lost (only
    /// possible when an IPC connection was reset mid-flight).
    fn redrive_stale_page_waits(&mut self) {
        let stale_after = Duration::from_secs(5);
        let now = self.now;
        for node in 0..self.nodes.len() {
            // `pending_pages` is a BTreeMap: iteration is already in
            // page order, so the redrive order is deterministic with no
            // collect-and-sort pass.
            let stale: Vec<PageKey> = self.nodes[node]
                .pending_pages
                .iter()
                .filter(|(_, p)| now.since(p.since) > stale_after)
                .map(|(&k, _)| k)
                .collect();
            for key in stale {
                if let Some(p) = self.nodes[node].pending_pages.get_mut(&key) {
                    p.since = now;
                    let txn = p.waiters.first().copied().unwrap_or(0);
                    self.redrive_page(node as u32, key, txn);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Fault injection (dclue-fault integration)
    // ------------------------------------------------------------------

    /// Apply every fault-plan event due now, then re-arm the timer.
    fn fault_tick(&mut self) {
        for kind in self.fault_sched.pop_due(self.now) {
            self.apply_fault(kind);
        }
        if let Some(t) = self.fault_sched.peek_next() {
            self.heap.push(t, Ev::Fault);
        }
    }

    /// Resolve a logical link reference against the built topology.
    fn resolve_link(&self, l: LinkRef) -> Option<LinkId> {
        match l {
            LinkRef::NodeUplink(i) => self
                .nodes
                .get(i)
                .map(|n| self.fabric.net.host_uplink(n.host)),
            LinkRef::ClientUplink(i) => self
                .fabric
                .client_hosts
                .get(i % self.fabric.client_hosts.len().max(1))
                .map(|&h| self.fabric.net.host_uplink(h)),
            LinkRef::Trunk(i) => self.fabric.trunks.get(i).copied(),
        }
    }

    fn apply_fault(&mut self, kind: FaultKind) {
        if dclue_trace::ENABLED {
            let (label, a) = match &kind {
                FaultKind::LinkDown(_) => ("fault_link_down", 0i64),
                FaultKind::LinkUp(_) => ("fault_link_up", 0),
                FaultKind::LinkDegrade { .. } => ("fault_link_degrade", 0),
                FaultKind::LinkRestore(_) => ("fault_link_restore", 0),
                FaultKind::RouterPortFail(_) => ("fault_port_fail", 0),
                FaultKind::RouterPortRecover(_) => ("fault_port_recover", 0),
                FaultKind::LossBurst { .. } => ("fault_loss_burst", 0),
                FaultKind::LossClear(_) => ("fault_loss_clear", 0),
                FaultKind::NodeCrash(n) => ("fault_node_crash", *n as i64),
                FaultKind::NodeRestart(n) => ("fault_node_restart", *n as i64),
                FaultKind::IscsiStall(n) => ("fault_iscsi_stall", *n as i64),
                FaultKind::IscsiResume(n) => ("fault_iscsi_resume", *n as i64),
            };
            dclue_trace::trace_event!(Fault, self.now.0, label, a);
        }
        match kind {
            FaultKind::LinkDown(l) => {
                if let Some(id) = self.resolve_link(l) {
                    self.fabric.net.set_link_up(id, false);
                }
            }
            FaultKind::LinkUp(l) => {
                if let Some(id) = self.resolve_link(l) {
                    self.fabric.net.set_link_up(id, true);
                }
            }
            FaultKind::LinkDegrade { link, factor } => {
                if let Some(id) = self.resolve_link(link) {
                    self.fabric.net.set_link_rate_factor(id, factor);
                }
            }
            FaultKind::LinkRestore(l) => {
                if let Some(id) = self.resolve_link(l) {
                    self.fabric.net.set_link_rate_factor(id, 1.0);
                }
            }
            FaultKind::RouterPortFail(l) => {
                // Router-side egress: towards the host on access links,
                // the a→b direction on router↔router trunks.
                let forward = matches!(l, LinkRef::Trunk(_));
                if let Some(id) = self.resolve_link(l) {
                    self.fabric.net.set_port_failed(id, forward, true);
                }
            }
            FaultKind::RouterPortRecover(l) => {
                let forward = matches!(l, LinkRef::Trunk(_));
                if let Some(id) = self.resolve_link(l) {
                    self.fabric.net.set_port_failed(id, forward, false);
                }
            }
            FaultKind::LossBurst {
                link,
                drop_prob,
                corrupt_prob,
            } => {
                if let Some(id) = self.resolve_link(link) {
                    // Dedicated stream per window: reproducible, and
                    // independent of every other draw in the run.
                    let seed = self.cfg.seed ^ 0x1055_B075 ^ ((id.0 as u64) << 32);
                    self.fabric
                        .net
                        .set_link_loss(id, drop_prob, corrupt_prob, seed);
                }
            }
            FaultKind::LossClear(l) => {
                if let Some(id) = self.resolve_link(l) {
                    self.fabric.net.clear_link_loss(id);
                }
            }
            FaultKind::NodeCrash(n) => self.crash_node(n),
            FaultKind::NodeRestart(n) => self.restart_node(n),
            FaultKind::IscsiStall(n) => {
                if n < self.storage.iscsi_gate.len() {
                    self.storage.iscsi_gate[n].stall();
                }
            }
            FaultKind::IscsiResume(n) => {
                if n < self.storage.iscsi_gate.len() {
                    let held = self.storage.iscsi_gate[n].resume();
                    for msg in held {
                        self.handle_ipc(n as u32, msg);
                    }
                }
            }
        }
    }

    /// Cluster-wide remastering freeze: abort every in-flight
    /// transaction, clear all lock tables and page waits, and rebuild
    /// the distributed state without the (crashed or returning) node.
    /// Real fusion clusters do a bounded version of this on membership
    /// change; the model takes the simple, conservative form.
    fn remaster_freeze(&mut self) {
        // Abort in-flight transactions in id order (determinism: the
        // txn map is a HashMap, so never iterate it for side effects).
        let mut ids: Vec<u64> = self.txns.keys().copied().collect();
        ids.sort_unstable();
        let mut kicked: Vec<u32> = Vec::new();
        for id in ids {
            if let Some(s) = self.txns.get(&id).and_then(|t| t.session) {
                kicked.push(s);
            }
            self.fault_abort_txn(id);
        }
        // Reset those clients' connections: the terminal sees an error,
        // thinks, and retries the whole business transaction.
        kicked.sort_unstable();
        kicked.dedup();
        for s in kicked {
            if let Some(conn) = self.driver.sessions[s as usize].conn {
                self.with_net(|net, ob| net.abort_connection(conn, ob));
            } else if self.driver.sessions[s as usize].inflight.is_some() {
                // Windowed mode: a shipped-in foreign transaction has no
                // connection here — its reset rides the cross-group
                // channel back to the session's home world.
                let home = self.xg_session_group(s);
                let my = self.fabric.xg.as_ref().map(|x| x.my_group);
                if home.is_some() && home != my {
                    let node = self.driver.sessions[s as usize].node;
                    self.xg_client_reset(s, node);
                }
            }
        }
        for n in 0..self.nodes.len() {
            self.nodes[n].locks = LockTable::new();
            self.nodes[n].pending_pages.clear();
        }
        self.storage.iscsi_inflight.clear();
        // Pending group-commit batches reference dead txns; drop them
        // (keep the generation counter so stale flush timers stay stale).
        for b in &mut self.storage.log_batches {
            b.txns.clear();
            b.bytes = 0;
            b.armed = false;
        }
        // Protocol-private state (e.g. read leases) was granted under
        // the old membership; the protocol decides what survives.
        let protocol = self.protocol;
        protocol.on_membership_change(self);
    }

    /// Abort one transaction because of an injected fault. Threads with
    /// a burst on the CPU cannot exit mid-burst; their blocking action
    /// is replaced so the burst's retirement finishes the abort.
    fn fault_abort_txn(&mut self, id: u64) {
        let Some(t) = self.txns.get_mut(&id) else {
            return;
        };
        self.collect.aborted_by_fault += 1;
        t.session = None; // client connection is reset separately
        t.locks_held.clear(); // lock tables are wholesale-cleared
        t.masters.clear();
        if t.phase == Phase::Running {
            t.block = Some(Block::Finish { aborted: true });
        } else {
            self.finish_txn(id, true);
        }
    }

    fn crash_node(&mut self, k: usize) {
        if k >= self.nodes.len() || !self.alive[k] {
            return;
        }
        self.alive[k] = false;
        self.remaster_freeze();
        // The node's volatile state is gone.
        let cap = self.buf_capacity;
        let n = &mut self.nodes[k];
        n.buffer = BufferCache::new(cap);
        n.directory = Directory::new();
        // resident_txns is NOT zeroed here: the freeze already finished
        // idle txns (decrementing it), and Running txns finish at burst
        // retirement where they decrement it themselves.
        self.storage.iscsi_gate[k].purge();
        // Survivors forget the crashed cache's residency.
        for n in 0..self.nodes.len() {
            if n != k {
                self.nodes[n].directory.purge_node(k as u32);
            }
        }
        // Reset its cluster connections; the reset handler schedules
        // reconnect attempts with backoff until the node returns.
        for other in 0..self.cfg.nodes {
            if other as usize == k {
                continue;
            }
            for class in [ConnClass::Ipc, ConnClass::Storage] {
                let (a, b) = ((k as u32).min(other), (k as u32).max(other));
                if let Some(c) = self.fabric.cluster_conns.get(a, b, class) {
                    self.with_net(|net, ob| net.abort_connection(c, ob));
                }
            }
        }
        // Clients talking to the crashed node retry elsewhere.
        let stranded: Vec<ConnId> = self
            .driver
            .sessions
            .iter()
            .filter(|s| s.node == k as u32)
            .filter_map(|s| s.conn)
            .collect();
        for c in stranded {
            self.with_net(|net, ob| net.abort_connection(c, ob));
        }
        // Aggregate model: *idle* pooled connections anchored at the
        // crashed node die too (busy ones were just caught above via
        // their bound session). The reset handler drops them from the
        // pools; replacements open on demand against live nodes.
        let idle: Vec<ConnId> = self
            .driver
            .pools
            .iter()
            .filter_map(|per_home| per_home.get(k))
            .flat_map(|pool| pool.iter())
            .filter(|c| c.busy.is_none())
            .map(|c| c.conn)
            .collect();
        for c in idle {
            self.with_net(|net, ob| net.abort_connection(c, ob));
        }
        // Windowed mode: shipped-in foreign clients whose request charge
        // was still pending (no transaction in the map yet) never reach
        // the remastering freeze above; their reset is staged here and
        // the pending `StartTxn` becomes a no-op via the alive check.
        if self.fabric.xg.is_some() {
            let pending: Vec<u32> = self
                .driver
                .sessions
                .iter()
                .enumerate()
                .filter(|(_, s)| s.node == k as u32 && s.conn.is_none() && s.inflight.is_some())
                .map(|(i, _)| i as u32)
                .collect();
            for s in pending {
                let home = self.xg_session_group(s);
                let my = self.fabric.xg.as_ref().map(|x| x.my_group);
                if home.is_some() && home != my {
                    self.xg_client_reset(s, k as u32);
                }
            }
        }
    }

    fn restart_node(&mut self, k: usize) {
        if k >= self.nodes.len() || self.alive[k] {
            return;
        }
        self.alive[k] = true;
        // Rejoin is a second membership change: same freeze, so the
        // node's lock mastership and directory role resume coherently
        // (its cache stays cold and refills on demand).
        self.remaster_freeze();
        for other in 0..self.cfg.nodes {
            if other as usize == k {
                continue;
            }
            for class in [ConnClass::Ipc, ConnClass::Storage] {
                let (a, b) = ((k as u32).min(other), (k as u32).max(other));
                if !self.fabric.cluster_conns.contains(a, b, class) {
                    self.heap.push(
                        self.now + Duration::from_millis(10),
                        Ev::IpcReconnect {
                            a,
                            b,
                            class,
                            attempt: 0,
                        },
                    );
                }
            }
        }
    }

    fn end_warmup(&mut self) {
        self.measuring = true;
        // Also clears the embedded latency histogram — see
        // `Collector::reset`.
        self.collect.reset(self.now);
        let now = self.now;
        for n in &mut self.nodes {
            n.cpu.stats.context_switches.reset();
            n.cpu.stats.cs_cycles.reset();
            n.cpu.stats.cpi.reset();
            n.cpu.stats.instructions = 0.0;
            n.cpu.stats.busy = Duration::ZERO;
            n.cpu.stats.live_threads.reset(now);
            n.cpu.stats.interrupts.reset();
            n.buffer.stats = Default::default();
        }
        self.fabric.trunk_bytes_at_warmup = self.trunk_tier_bytes();
        self.versions_at_warmup = self.db.versions.stats.versions_created;
    }

    fn build_report(&mut self) -> Report {
        // End-of-run structural check: every lock-table shard must be
        // internally consistent (holders/waiters ↔ by_txn cross-index).
        for n in &self.nodes {
            n.locks.check_consistency(self.now.0);
        }
        let window = self.now.since(self.collect.window_start);
        let wsecs = window.as_secs_f64().max(1e-9);
        let c = &self.collect;
        let committed = c.committed.max(1);
        let tpmc_scaled = c.committed_new_orders as f64 / wsecs * 60.0;
        let n_nodes = self.nodes.len() as f64;
        let avg_cpi = self
            .nodes
            .iter()
            .map(|n| n.cpu.stats.cpi.mean())
            .sum::<f64>()
            / n_nodes;
        let avg_cs = self
            .nodes
            .iter()
            .map(|n| n.cpu.stats.cs_cycles.mean())
            .sum::<f64>()
            / n_nodes;
        let threads = self
            .nodes
            .iter()
            .map(|n| n.cpu.stats.live_threads.mean(self.now))
            .sum::<f64>()
            / n_nodes;
        let util = self
            .nodes
            .iter()
            .map(|n| n.cpu.utilization(window))
            .sum::<f64>()
            / n_nodes;
        let (hits, misses) = self.nodes.iter().fold((0u64, 0u64), |(h, m), n| {
            (h + n.buffer.stats.hits, m + n.buffer.stats.misses)
        });
        let hit_ratio = if hits + misses == 0 {
            1.0
        } else {
            hits as f64 / (hits + misses) as f64
        };
        // Per-tier trunk deltas over the measurement window; capacity
        // comes from the actual link bandwidths, not a single assumed
        // `cfg.trunk_bw`, so mixed-tier fabrics report honestly.
        let tier_bytes = self.trunk_tier_bytes();
        let tier_delta: Vec<u64> = tier_bytes
            .iter()
            .zip(&self.fabric.trunk_bytes_at_warmup)
            .map(|(now, warm)| now.saturating_sub(*warm))
            .collect();
        let tier_capacity = self.trunk_tier_capacity();
        let tier_mbps: Vec<f64> = tier_delta
            .iter()
            .map(|&d| d as f64 * 8.0 / wsecs / 1e6)
            .collect();
        let tier_util = |t: usize| (tier_mbps[t] * 1e6 / tier_capacity[t].max(1.0)).min(1.0);
        let trunk_mbps = tier_mbps[0] + tier_mbps[1];
        let trunk_capacity = (tier_capacity[0] + tier_capacity[1]).max(1.0);
        let drops: u64 = self
            .fabric
            .net
            .links()
            .iter()
            .map(|l| l.ports[0].stats.dropped + l.ports[1].stats.dropped)
            .sum::<u64>()
            + self
                .fabric
                .net
                .routers()
                .iter()
                .map(|r| r.stats.input_dropped)
                .sum::<u64>();
        // Availability: rate timeline inside the measurement window
        // (committed only advances there) against the plan's windows.
        let availability = if self.cfg.fault_plan.is_empty() {
            None
        } else {
            let ws = self.collect.window_start.as_secs_f64();
            let samples: Vec<(f64, u64)> = self
                .timeline
                .iter()
                .filter(|&&(t, _, _)| t >= ws)
                .map(|&(t, c, _)| (t, c))
                .collect();
            let windows: Vec<(f64, f64)> = self
                .cfg
                .fault_plan
                .fault_windows()
                .iter()
                .map(|&(s, e)| (s.as_secs_f64(), e.as_secs_f64()))
                .collect();
            Some(dclue_fault::avail::analyze(&samples, &windows))
        };
        Report {
            nodes: self.cfg.nodes,
            affinity: self.cfg.affinity,
            window_s: wsecs,
            tpmc_scaled,
            tpmc_equivalent: tpmc_scaled * 100.0,
            tps_scaled: c.committed as f64 / wsecs,
            committed: c.committed,
            aborted: c.aborted,
            ctl_msgs_per_txn: c.ctl_msgs as f64 / committed as f64,
            data_msgs_per_txn: c.data_msgs as f64 / committed as f64,
            storage_msgs_per_txn: c.storage_msgs as f64 / committed as f64,
            lock_waits_per_txn: c.lock_waits as f64 / committed as f64,
            lock_busies_per_txn: c.lock_busies as f64 / committed as f64,
            lock_wait_ms: c.lock_wait.mean() * 1e3,
            txn_latency_ms: c.txn_latency.mean() * 1e3,
            avg_cpi,
            avg_cs_cycles: avg_cs,
            avg_live_threads: threads,
            cpu_util: util,
            buffer_hit_ratio: hit_ratio,
            fusion_transfers_per_txn: c.fusion_transfers as f64 / committed as f64,
            lease_transfers_per_txn: c.lease_transfers as f64 / committed as f64,
            lease_renewals_per_txn: c.lease_renewals as f64 / committed as f64,
            disk_reads_per_txn: c.disk_reads as f64 / committed as f64,
            version_walks_per_txn: c.version_walks as f64 / committed as f64,
            txn_latency_p95_ms: c.latency_hist.quantile(0.95) * 1e3,
            versions_created_per_txn: (self.db.versions.stats.versions_created
                - self.versions_at_warmup) as f64
                / committed as f64,
            trunk_mbps,
            trunk_utilization: (trunk_mbps * 1e6 / trunk_capacity).min(1.0),
            trunk_mbps_edge: tier_mbps[0],
            trunk_utilization_edge: tier_util(0),
            trunk_mbps_agg: tier_mbps[1],
            trunk_utilization_agg: tier_util(1),
            max_path_hops: self.placement.max_hops,
            ftp_mbps: c.ftp_bytes_delivered * 8.0 / wsecs / 1e6,
            ftp_denied: self.driver.ftp_pairs.iter().map(|p| p.denied).sum(),
            timeline: std::mem::take(&mut self.timeline),
            ipc_resets: c.ipc_resets,
            drops,
            fault_events_applied: self.fault_sched.applied(),
            aborted_by_fault: c.aborted_by_fault,
            iscsi_retries: c.iscsi_retries,
            fault_drops: self.fabric.net.fault_drops(),
            availability,
        }
    }
}
