//! Sweep-level parallelism: a dependency-free scoped worker pool.
//!
//! One simulation is deliberately single-threaded (see the crate docs),
//! but an experiment sweep is a bag of independent `(config, seed)`
//! points, each a pure function of its inputs. [`run_ordered`] fans such
//! a bag across OS threads and reassembles the results **by submission
//! index**, so a caller that prints or averages results in order sees
//! output bit-identical to a serial loop — the determinism contract the
//! figures harness relies on.
//!
//! With `jobs <= 1` (or a single item) the pool is bypassed entirely and
//! the closure runs on the caller's thread in submission order: the
//! exact legacy serial path, not an emulation of it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of hardware threads available to this process (≥ 1).
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolve a worker count: an explicit request wins, then the
/// `DCLUE_JOBS` environment variable, then all available cores.
/// Zero or unparsable values fall through to the next source.
pub fn resolve_jobs(explicit: Option<usize>) -> usize {
    explicit
        .filter(|&n| n >= 1)
        .or_else(|| {
            std::env::var("DCLUE_JOBS")
                .ok()
                .and_then(|s| s.trim().parse().ok())
                .filter(|&n| n >= 1)
        })
        .unwrap_or_else(available_jobs)
}

/// Apply `f` to every item using up to `jobs` worker threads, returning
/// results in submission order.
///
/// Work is handed out by a shared atomic cursor (index order), so early
/// items start first; results are written back into the slot matching
/// their input index, making the output indistinguishable from
/// `items.into_iter().map(f).collect()` — which is literally what runs
/// when `jobs <= 1`. A panic in `f` propagates to the caller.
///
/// ```
/// let squares = dclue_sim::par::run_ordered(4, (0u64..100).collect(), |x| x * x);
/// assert_eq!(squares, (0u64..100).map(|x| x * x).collect::<Vec<_>>());
/// ```
pub fn run_ordered<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let tasks: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);
    let workers = jobs.min(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut done: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let item = tasks[i].lock().unwrap().take().unwrap();
                        done.push((i, f(item)));
                    }
                    done
                })
            })
            .collect();
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for h in handles {
            for (i, r) in h.join().expect("pool worker panicked") {
                results[i] = Some(r);
            }
        }
        results
            .into_iter()
            .map(|slot| slot.expect("every index was claimed by exactly one worker"))
            .collect()
    })
}

/// A reusable spin barrier for tightly-coupled phase loops.
///
/// The windowed intra-run engine synchronizes its group threads tens of
/// thousands of times per simulated run — two rendezvous per ~1 ms
/// window. `std::sync::Barrier` parks threads in the kernel on every
/// wait, which costs more than an entire window's worth of event
/// processing; this barrier spins on a generation counter instead
/// (with `spin_loop` hints), making a rendezvous of a handful of
/// threads a sub-microsecond affair. Spinning is the right trade here
/// because every participant arrives within microseconds of the others
/// by construction; this is not a general-purpose barrier.
///
/// After a bounded number of spins the waiter downgrades to
/// `yield_now`: when the host is oversubscribed (fewer cores than
/// groups — CI runners, laptops on battery), a peer may not even be
/// *running*, and burning the rest of a scheduling quantum on its
/// behalf turns each rendezvous into milliseconds. Yielding hands the
/// core straight to the laggard instead, degrading gracefully to
/// context-switch cost while leaving the uncontended fast path pure
/// spin.
pub struct SpinBarrier {
    parties: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    pub fn new(parties: usize) -> Self {
        assert!(parties >= 1);
        SpinBarrier {
            parties,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Block (spinning) until all `parties` threads have called `wait`.
    /// Returns `true` on exactly one thread per rendezvous (the last
    /// arriver — the designated leader for any serial merge step).
    pub fn wait(&self) -> bool {
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) == self.parties - 1 {
            // Last arriver: reset the count, then release the others by
            // advancing the generation.
            self.arrived.store(0, Ordering::Relaxed);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
            true
        } else {
            let mut spins: u32 = 0;
            while self.generation.load(Ordering::Acquire) == gen {
                spins += 1;
                if spins < 1 << 12 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_submission_order() {
        // Uneven per-item cost so completion order differs from
        // submission order when workers race.
        let items: Vec<u64> = (0..64).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x) ^ 7).collect();
        for jobs in [1, 2, 3, 8] {
            let got = run_ordered(jobs, items.clone(), |x| {
                if x % 7 == 0 {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                x.wrapping_mul(x) ^ 7
            });
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn serial_path_runs_on_caller_thread() {
        let caller = std::thread::current().id();
        let ids = run_ordered(1, vec![(), (), ()], |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(run_ordered(8, Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(run_ordered(8, vec![41], |x| x + 1), vec![42]);
    }

    #[test]
    fn more_jobs_than_items() {
        let got = run_ordered(32, (0..5).collect(), |x| x * 2);
        assert_eq!(got, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn resolve_jobs_precedence() {
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert!(resolve_jobs(None) >= 1);
        // Zero is not a valid worker count; falls through.
        assert!(resolve_jobs(Some(0)) >= 1);
    }

    #[test]
    fn spin_barrier_synchronizes_phases() {
        use std::sync::atomic::AtomicU64;
        const THREADS: usize = 4;
        const ROUNDS: usize = 1_000;
        let barrier = SpinBarrier::new(THREADS);
        let counter = AtomicU64::new(0);
        let leaders = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for round in 0..ROUNDS {
                        counter.fetch_add(1, Ordering::Relaxed);
                        if barrier.wait() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                        // Every thread must observe all increments of
                        // this round before any thread starts the next.
                        let seen = counter.load(Ordering::Relaxed);
                        assert!(seen >= ((round + 1) * THREADS) as u64);
                        assert!(seen <= ((round + 2) * THREADS) as u64);
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), (THREADS * ROUNDS) as u64);
        // Exactly one leader per rendezvous, two rendezvous per round.
        assert_eq!(leaders.load(Ordering::Relaxed), ROUNDS as u64);
    }

    #[test]
    fn spin_barrier_single_party_is_always_leader() {
        let b = SpinBarrier::new(1);
        assert!(b.wait());
        assert!(b.wait());
    }
}
