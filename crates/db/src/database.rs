//! The in-memory TPC-C database instance: table stores, B+-tree indices,
//! the version store, and the timestamp source.
//!
//! One `Database` exists per simulated cluster (the logical, coherent
//! database that cache fusion presents); per-node state — buffer caches
//! and lock shards — lives elsewhere. Row payloads keep only the fields
//! queries need, while sizing (rows per page, pages per table) follows
//! the real row widths in [`crate::schema`].

use crate::btree::BTree;
use crate::mvcc::VersionStore;
use crate::schema::{self, Table, TpccScale};

/// Rowid span reserved per warehouse in growing tables, so their pages
/// never straddle warehouses (required for per-warehouse storage homes).
pub const WH_ROW_SPAN: u64 = 1 << 24;
/// Page-number span per warehouse for growing tables.
pub const WH_PAGE_SPAN: u64 = 1 << 16;

// ---------------------------------------------------------------------
// Row payloads (business fields only; widths come from the schema).
// ---------------------------------------------------------------------

#[derive(Clone, Copy, Debug, Default)]
pub struct WarehouseRow {
    pub ytd: u64,
}

#[derive(Clone, Copy, Debug, Default)]
pub struct DistrictRow {
    pub next_o_id: u32,
    pub ytd: u64,
}

#[derive(Clone, Copy, Debug, Default)]
pub struct CustomerRow {
    pub balance: i64,
    pub ytd_payment: u64,
    pub payment_cnt: u32,
    pub delivery_cnt: u32,
}

#[derive(Clone, Copy, Debug, Default)]
pub struct StockRow {
    pub quantity: i32,
    pub ytd: u32,
    pub order_cnt: u32,
    pub remote_cnt: u32,
}

#[derive(Clone, Copy, Debug, Default)]
pub struct ItemRow {
    pub price: u32,
}

#[derive(Clone, Copy, Debug, Default)]
pub struct OrderRow {
    pub c_id: u32,
    pub ol_cnt: u8,
    pub carrier_id: u8,
}

#[derive(Clone, Copy, Debug, Default)]
pub struct OrderLineRow {
    pub i_id: u32,
    pub qty: u8,
    pub amount: u32,
    pub delivered: bool,
}

// ---------------------------------------------------------------------
// Per-warehouse arena store for growing tables.
// ---------------------------------------------------------------------

#[derive(Debug)]
pub struct Store<T> {
    arenas: Vec<Arena<T>>,
    table: Table,
}

#[derive(Debug)]
struct Arena<T> {
    rows: Vec<Option<T>>,
    free: Vec<u32>,
}

impl<T: Copy> Store<T> {
    fn new(table: Table, warehouses: u32) -> Self {
        Store {
            arenas: (0..warehouses)
                .map(|_| Arena {
                    rows: Vec::new(),
                    free: Vec::new(),
                })
                .collect(),
            table,
        }
    }

    /// Rowid that the next insert into warehouse `w` will use.
    pub fn peek_rowid(&self, w: u32) -> u64 {
        let a = &self.arenas[(w - 1) as usize];
        let local = a.free.last().copied().unwrap_or(a.rows.len() as u32);
        (w as u64 - 1) * WH_ROW_SPAN + local as u64
    }

    pub fn insert(&mut self, w: u32, row: T) -> u64 {
        let a = &mut self.arenas[(w - 1) as usize];
        let local = match a.free.pop() {
            Some(i) => {
                a.rows[i as usize] = Some(row);
                i
            }
            None => {
                a.rows.push(Some(row));
                (a.rows.len() - 1) as u32
            }
        };
        (w as u64 - 1) * WH_ROW_SPAN + local as u64
    }

    pub fn get(&self, rowid: u64) -> Option<&T> {
        let (w, local) = split(rowid);
        self.arenas.get(w)?.rows.get(local).and_then(|r| r.as_ref())
    }

    pub fn get_mut(&mut self, rowid: u64) -> Option<&mut T> {
        let (w, local) = split(rowid);
        self.arenas
            .get_mut(w)?
            .rows
            .get_mut(local)
            .and_then(|r| r.as_mut())
    }

    pub fn remove(&mut self, rowid: u64) -> Option<T> {
        let (w, local) = split(rowid);
        let a = self.arenas.get_mut(w)?;
        let slot = a.rows.get_mut(local)?;
        let old = slot.take();
        if old.is_some() {
            a.free.push(local as u32);
        }
        old
    }

    /// `(page, slot)` of a rowid, in the table's global page namespace.
    pub fn page_slot(&self, rowid: u64) -> (u64, u64) {
        let (w, local) = split(rowid);
        let rpp = self.table.rows_per_page();
        (
            w as u64 * WH_PAGE_SPAN + local as u64 / rpp,
            local as u64 % rpp,
        )
    }

    pub fn len(&self) -> usize {
        self.arenas
            .iter()
            .map(|a| a.rows.len() - a.free.len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[inline]
fn split(rowid: u64) -> (usize, usize) {
    (
        (rowid / WH_ROW_SPAN) as usize,
        (rowid % WH_ROW_SPAN) as usize,
    )
}

// ---------------------------------------------------------------------
// The database.
// ---------------------------------------------------------------------

/// The cluster-wide logical database.
pub struct Database {
    pub scale: TpccScale,
    pub warehouses: Vec<WarehouseRow>,
    pub districts: Vec<DistrictRow>,
    pub customers: Vec<CustomerRow>,
    pub stocks: Vec<StockRow>,
    pub items: Vec<ItemRow>,
    pub orders: Store<OrderRow>,
    pub new_orders: Store<()>,
    pub order_lines: Store<OrderLineRow>,
    pub history_rows: u64,
    /// Indices for the eight keyed tables (history is heap-only).
    idx: Vec<BTree>,
    pub versions: VersionStore,
    /// Page-grain locking override (ablation; default subpage-grain).
    pub coarse_locks: bool,
    ts: u64,
}

impl Database {
    /// Build and initialise the whole database per TPC-C rules.
    pub fn build(scale: TpccScale) -> Self {
        let w_n = scale.warehouses;
        let mut db = Database {
            warehouses: vec![WarehouseRow::default(); w_n as usize],
            districts: vec![
                DistrictRow {
                    next_o_id: scale.initial_orders_per_district + 1,
                    ytd: 0,
                };
                scale.districts() as usize
            ],
            customers: vec![CustomerRow::default(); scale.customers() as usize],
            stocks: vec![
                StockRow {
                    quantity: 50,
                    ..Default::default()
                };
                scale.stock_rows() as usize
            ],
            items: (0..scale.items)
                .map(|i| ItemRow {
                    price: 100 + (i * 37) % 9900,
                })
                .collect(),
            orders: Store::new(Table::Order, w_n),
            new_orders: Store::new(Table::NewOrder, w_n),
            order_lines: Store::new(Table::OrderLine, w_n),
            history_rows: 0,
            idx: (0..8).map(|_| BTree::new()).collect(),
            versions: VersionStore::new(64 << 20),
            coarse_locks: false,
            ts: 1,
            scale,
        };
        db.build_indices_and_orders();
        db
    }

    fn build_indices_and_orders(&mut self) {
        let scale = self.scale.clone();
        let mut tr = Vec::new();
        // Fixed tables: dense rowids, keys from the schema encoders.
        for w in 1..=scale.warehouses {
            self.idx[Table::Warehouse.id() as usize].insert(
                schema::wh_key(w),
                (w - 1) as u64,
                &mut tr,
            );
            for d in 1..=scale.districts_per_wh {
                let drow = ((w - 1) * scale.districts_per_wh + (d - 1)) as u64;
                self.idx[Table::District.id() as usize].insert(
                    schema::district_key(w, d),
                    drow,
                    &mut tr,
                );
                for c in 1..=scale.customers_per_district {
                    let crow = drow * scale.customers_per_district as u64 + (c - 1) as u64;
                    self.idx[Table::Customer.id() as usize].insert(
                        schema::customer_key(w, d, c),
                        crow,
                        &mut tr,
                    );
                }
            }
            for i in 1..=scale.items {
                let srow = ((w - 1) * scale.items + (i - 1)) as u64;
                self.idx[Table::Stock.id() as usize].insert(schema::stock_key(w, i), srow, &mut tr);
            }
        }
        for i in 1..=scale.items {
            self.idx[Table::Item.id() as usize].insert(
                schema::item_key(i),
                (i - 1) as u64,
                &mut tr,
            );
        }

        // Initial orders: the most recent 30% are open (new-order rows).
        let open_from = scale.initial_orders_per_district
            - (scale.initial_orders_per_district * 3 / 10).max(1)
            + 1;
        let mut lcg: u64 = 0x9E3779B97F4A7C15;
        let mut rand = move || {
            lcg ^= lcg << 13;
            lcg ^= lcg >> 7;
            lcg ^= lcg << 17;
            lcg
        };
        for w in 1..=scale.warehouses {
            for d in 1..=scale.districts_per_wh {
                for o in 1..=scale.initial_orders_per_district {
                    let c = (rand() % scale.customers_per_district as u64) as u32 + 1;
                    let ol_cnt = 5 + (rand() % 11) as u8;
                    let rowid = self.orders.insert(
                        w,
                        OrderRow {
                            c_id: c,
                            ol_cnt,
                            carrier_id: if o < open_from { 1 } else { 0 },
                        },
                    );
                    self.idx[Table::Order.id() as usize].insert(
                        schema::order_key(w, d, o),
                        rowid,
                        &mut tr,
                    );
                    if o >= open_from {
                        let no = self.new_orders.insert(w, ());
                        self.idx[Table::NewOrder.id() as usize].insert(
                            schema::order_key(w, d, o),
                            no,
                            &mut tr,
                        );
                    }
                    for ol in 0..ol_cnt as u32 {
                        let i_id = (rand() % scale.items as u64) as u32 + 1;
                        let olrow = self.order_lines.insert(
                            w,
                            OrderLineRow {
                                i_id,
                                qty: 5,
                                amount: 0,
                                delivered: o < open_from,
                            },
                        );
                        self.idx[Table::OrderLine.id() as usize].insert(
                            schema::order_line_key(w, d, o, ol),
                            olrow,
                            &mut tr,
                        );
                    }
                }
            }
        }
    }

    /// Monotone logical timestamp source.
    pub fn next_ts(&mut self) -> u64 {
        self.ts += 1;
        self.ts
    }

    pub fn current_ts(&self) -> u64 {
        self.ts
    }

    #[allow(clippy::should_implement_trait)]
    pub fn index(&self, table: Table) -> &BTree {
        &self.idx[table.id() as usize]
    }

    #[allow(clippy::should_implement_trait)]
    pub fn index_mut(&mut self, table: Table) -> &mut BTree {
        &mut self.idx[table.id() as usize]
    }

    /// Index lookup returning `(rowid, data_page, slot)` and tracing the
    /// index pages touched.
    pub fn locate(&self, table: Table, key: u64, trace: &mut Vec<u32>) -> Option<(u64, u64, u64)> {
        let rowid = self.idx[table.id() as usize].get(key, trace)?;
        Some(self.page_slot_of(table, rowid))
    }

    /// `(rowid, page, slot)` for a known rowid.
    pub fn page_slot_of(&self, table: Table, rowid: u64) -> (u64, u64, u64) {
        let rpp = table.rows_per_page();
        match table {
            Table::Order => {
                let (p, s) = self.orders.page_slot(rowid);
                (rowid, p, s)
            }
            Table::NewOrder => {
                let (p, s) = self.new_orders.page_slot(rowid);
                (rowid, p, s)
            }
            Table::OrderLine => {
                let (p, s) = self.order_lines.page_slot(rowid);
                (rowid, p, s)
            }
            Table::History => (rowid, rowid / rpp, rowid % rpp),
            _ => (rowid, rowid / rpp, rowid % rpp),
        }
    }

    /// Total pages a full scan of `table`'s data would touch (for buffer
    /// sizing heuristics).
    pub fn data_pages(&self, table: Table) -> u64 {
        let rows = match table {
            Table::Warehouse => self.warehouses.len() as u64,
            Table::District => self.districts.len() as u64,
            Table::Customer => self.customers.len() as u64,
            Table::Stock => self.stocks.len() as u64,
            Table::Item => self.items.len() as u64,
            Table::Order => self.orders.len() as u64,
            Table::NewOrder => self.new_orders.len() as u64,
            Table::OrderLine => self.order_lines.len() as u64,
            Table::History => self.history_rows,
        };
        rows.div_ceil(table.rows_per_page())
    }

    /// Approximate total footprint in pages (data + index).
    pub fn total_pages(&self) -> u64 {
        let data: u64 = Table::ALL.iter().map(|&t| self.data_pages(t)).sum();
        let index: u64 = self.idx.iter().map(|b| b.node_count() as u64).sum();
        data + index
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Database {
        Database::build(TpccScale {
            warehouses: 2,
            districts_per_wh: 10,
            customers_per_district: 30,
            items: 100,
            initial_orders_per_district: 20,
        })
    }

    #[test]
    fn build_populates_fixed_tables() {
        let db = small();
        assert_eq!(db.warehouses.len(), 2);
        assert_eq!(db.districts.len(), 20);
        assert_eq!(db.customers.len(), 600);
        assert_eq!(db.stocks.len(), 200);
        assert_eq!(db.items.len(), 100);
    }

    #[test]
    fn initial_orders_present_and_indexed() {
        let db = small();
        assert_eq!(db.orders.len(), 2 * 10 * 20);
        assert!(!db.new_orders.is_empty());
        assert!(db.order_lines.len() > db.orders.len() * 4);
        // Every district's next_o_id points past the loaded orders.
        for d in &db.districts {
            assert_eq!(d.next_o_id, 21);
        }
        // Index can find a known order.
        let mut tr = Vec::new();
        let found = db
            .index(Table::Order)
            .get(schema::order_key(1, 1, 1), &mut tr);
        assert!(found.is_some());
    }

    #[test]
    fn locate_roundtrips_customer() {
        let db = small();
        let mut tr = Vec::new();
        let (rowid, page, slot) = db
            .locate(Table::Customer, schema::customer_key(2, 3, 7), &mut tr)
            .unwrap();
        assert_eq!(rowid, ((10 + 2) * 30 + 6) as u64);
        assert_eq!(page, rowid / Table::Customer.rows_per_page());
        assert_eq!(slot, rowid % Table::Customer.rows_per_page());
        assert!(!tr.is_empty(), "index pages must be traced");
    }

    #[test]
    fn store_insert_remove_reuses_slots() {
        let mut s: Store<OrderRow> = Store::new(Table::Order, 2);
        let a = s.insert(1, OrderRow::default());
        let b = s.insert(1, OrderRow::default());
        assert_ne!(a, b);
        s.remove(a);
        let c = s.insert(1, OrderRow::default());
        assert_eq!(a, c, "freed slot reused");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn store_pages_stay_within_warehouse() {
        let mut s: Store<()> = Store::new(Table::NewOrder, 2);
        let r1 = s.insert(1, ());
        let r2 = s.insert(2, ());
        let (p1, _) = s.page_slot(r1);
        let (p2, _) = s.page_slot(r2);
        assert_eq!(p1, 0);
        assert_eq!(p2, WH_PAGE_SPAN);
    }

    #[test]
    fn peek_rowid_predicts_insert() {
        let mut s: Store<OrderRow> = Store::new(Table::Order, 1);
        let peek = s.peek_rowid(1);
        let got = s.insert(1, OrderRow::default());
        assert_eq!(peek, got);
    }

    #[test]
    fn timestamps_are_monotone() {
        let mut db = small();
        let a = db.next_ts();
        let b = db.next_ts();
        assert!(b > a);
    }

    #[test]
    fn total_pages_is_positive_and_sane() {
        let db = small();
        let pages = db.total_pages();
        assert!(pages > 50, "pages={pages}");
        assert!(pages < 100_000);
    }
}
