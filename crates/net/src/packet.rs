//! Packets and DSCP traffic classes.

use crate::tcp::Segment;
use crate::types::HostId;

/// Differentiated-services code points used in the study.
///
/// The paper's QoS experiments use two arrangements: everything
/// best-effort, or FTP cross traffic promoted to AF21 (which, in the
/// OPNET default the paper relies on, means priority treatment and a
/// deeper queue at the routers). We model exactly that.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Dscp {
    /// Default forwarding.
    #[default]
    BestEffort,
    /// Assured forwarding 2x — treated as strictly higher priority with a
    /// deeper router queue, matching the OPNET default the paper cites.
    Af21,
}

impl Dscp {
    /// Queue index at a QoS-enabled output port (0 = highest priority).
    #[inline]
    pub fn priority_class(self) -> usize {
        match self {
            Dscp::Af21 => 0,
            Dscp::BestEffort => 1,
        }
    }

    pub const CLASSES: usize = 2;
}

/// Per-packet protocol overhead in bytes: Ethernet (14 + 4 FCS + 8
/// preamble + 12 IFG equivalent) + IP (20) + TCP (20).
pub const HEADER_BYTES: u64 = 78;

/// A TCP/IP packet in flight. Payload content is never materialised —
/// only lengths and sequence ranges matter to the model.
#[derive(Clone, Debug)]
pub struct Packet {
    pub src: HostId,
    pub dst: HostId,
    pub dscp: Dscp,
    /// ECN-capable transport (set for all TCP traffic when ECN enabled).
    pub ect: bool,
    /// Congestion-experienced mark set by a router.
    pub ce: bool,
    /// Number of back-to-back wire segments this packet stands for.
    /// `1` for an ordinary packet; `> 1` for a segment train, in which
    /// case `seg.len` spans the whole train and the wire carries one
    /// header per member segment.
    pub train: u16,
    pub seg: Segment,
}

impl Packet {
    /// Total wire size including all protocol overhead (one header per
    /// train member — a train is a modeling artifact, not jumbo frames).
    #[inline]
    pub fn wire_bytes(&self) -> u64 {
        HEADER_BYTES * self.train.max(1) as u64 + self.seg.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::{Flags, SackList, Segment};
    use crate::types::{ConnId, Side};

    fn seg(len: u64) -> Segment {
        Segment {
            conn: ConnId(0),
            from: Side::Opener,
            seq: 0,
            ack: 0,
            len,
            flags: Flags::ACK,
            ece: false,
            cwr: false,
            sack: SackList::EMPTY,
        }
    }

    #[test]
    fn wire_size_includes_headers() {
        let p = Packet {
            src: HostId(0),
            dst: HostId(1),
            dscp: Dscp::BestEffort,
            ect: false,
            ce: false,
            train: 1,
            seg: seg(1460),
        };
        assert_eq!(p.wire_bytes(), 1460 + HEADER_BYTES);
    }

    #[test]
    fn af21_outranks_best_effort() {
        assert!(Dscp::Af21.priority_class() < Dscp::BestEffort.priority_class());
    }
}
