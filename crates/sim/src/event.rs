//! The event queue.
//!
//! A binary heap keyed by `(time, sequence)`. The sequence number is a
//! monotonically increasing insertion counter, which gives simultaneous
//! events a stable FIFO order — the property that makes whole-cluster runs
//! bit-reproducible for a fixed RNG seed.
//!
//! ## The same-time fast path
//!
//! DES engines schedule a large fraction of their events at *exactly the
//! current time*: zero-delay follow-ups, outbox drains, ack chains and
//! pipeline handoffs all fire "now". Routing those through the heap costs
//! two O(log n) sifts each. This queue instead keeps a FIFO side bucket
//! of events whose timestamp equals the time of the most recently popped
//! event; pushes and pops on that bucket are O(1).
//!
//! Ordering stays exactly the old `BinaryHeap` semantics: every bucket
//! entry carries a sequence number drawn from the same counter as heap
//! entries, and `pop` compares the heap head against the bucket head by
//! `(time, seq)` before choosing. The bucket is time-homogeneous by
//! construction (entries are only admitted when their time equals the
//! bucket's), so the comparison against its front entry decides for the
//! whole bucket. The property test at the bottom drives 10k random
//! interleaved operations — including pushes into the past — against a
//! brute-force reference model.

use crate::time::{Duration, SimTime};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Heap entries hold only ordering metadata plus a slab index; the
/// payload itself sits still in `EventHeap::slots`. Sift operations
/// therefore move 24 bytes regardless of how large the event enum is —
/// the whole-cluster event wraps entire network packets, and moving
/// those through every O(log n) sift dominated `pop` in profiles.
struct Entry {
    time: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic earliest-first event queue.
///
/// ```
/// use dclue_sim::{EventHeap, SimTime};
///
/// let mut q = EventHeap::new();
/// q.push(SimTime(20), "later");
/// q.push(SimTime(10), "sooner");
/// assert_eq!(q.pop(), Some((SimTime(10), "sooner")));
/// assert_eq!(q.pop(), Some((SimTime(20), "later")));
/// ```
pub struct EventHeap<E> {
    heap: BinaryHeap<Entry>,
    /// Payload slab for heap entries, indexed by `Entry::slot`; `None`
    /// slots are free and their indices are in `free`.
    slots: Vec<Option<E>>,
    free: Vec<u32>,
    /// Same-time FIFO bucket: entries scheduled at exactly `cur`.
    /// Invariant: time-homogeneous, sequence numbers ascending.
    immediate: VecDeque<(SimTime, u64, E)>,
    /// Time of the most recently popped event (the engine's "now").
    cur: SimTime,
    seq: u64,
    /// Total number of events ever pushed (for engine statistics).
    pushed: u64,
    /// Total number of events ever popped (events actually processed).
    popped: u64,
}

impl<E> Default for EventHeap<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventHeap<E> {
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Pre-size the queue for an expected number of pending events.
    pub fn with_capacity(events: usize) -> Self {
        EventHeap {
            heap: BinaryHeap::with_capacity(events),
            slots: Vec::with_capacity(events),
            free: Vec::new(),
            immediate: VecDeque::with_capacity(16),
            cur: SimTime::ZERO,
            seq: 0,
            pushed: 0,
            popped: 0,
        }
    }

    /// Schedule `payload` to fire at absolute time `at`.
    pub fn push(&mut self, at: SimTime, payload: E) {
        let seq = self.seq;
        self.seq += 1;
        self.pushed += 1;
        // Fast path: an event for "now" joins the FIFO bucket iff the
        // bucket stays time-homogeneous (it is empty or already holds
        // `at`). Out-of-order pushes into the past fall through to the
        // heap, which handles any timestamp.
        if at == self.cur && self.immediate.front().is_none_or(|f| f.0 == at) {
            self.immediate.push_back((at, seq, payload));
        } else {
            let slot = match self.free.pop() {
                Some(i) => {
                    self.slots[i as usize] = Some(payload);
                    i
                }
                None => {
                    self.slots.push(Some(payload));
                    (self.slots.len() - 1) as u32
                }
            };
            self.heap.push(Entry {
                time: at,
                seq,
                slot,
            });
        }
    }

    /// Schedule `payload` at the current time plus `delay` — the time of
    /// the most recently popped event, i.e. the engine's "now". With a
    /// zero delay this is the O(1) same-time fast path. Returns the
    /// absolute time the event was scheduled for.
    pub fn push_after(&mut self, delay: Duration, payload: E) -> SimTime {
        let at = self.cur + delay;
        self.push(at, payload);
        at
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let take_heap = match (self.heap.peek(), self.immediate.front()) {
            (None, None) => return None,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(h), Some(&(itime, iseq, _))) => {
                h.time < itime || (h.time == itime && h.seq < iseq)
            }
        };
        self.popped += 1;
        if take_heap {
            let e = self.heap.pop().unwrap();
            let payload = self.slots[e.slot as usize].take().unwrap();
            self.free.push(e.slot);
            self.cur = e.time;
            Some((e.time, payload))
        } else {
            let (t, _, payload) = self.immediate.pop_front().unwrap();
            self.cur = t;
            Some((t, payload))
        }
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        match (self.heap.peek(), self.immediate.front()) {
            (None, None) => None,
            (Some(h), None) => Some(h.time),
            (None, Some(&(t, _, _))) => Some(t),
            (Some(h), Some(&(t, _, _))) => Some(h.time.min(t)),
        }
    }

    /// Time of the most recently popped event (the queue's "now").
    pub fn current_time(&self) -> SimTime {
        self.cur
    }

    pub fn len(&self) -> usize {
        self.heap.len() + self.immediate.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty() && self.immediate.is_empty()
    }

    /// Total number of events pushed over the queue's lifetime.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total number of events popped (processed) over the queue's lifetime.
    pub fn total_popped(&self) -> u64 {
        self.popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventHeap::new();
        q.push(SimTime(30), "c");
        q.push(SimTime(10), "a");
        q.push(SimTime(20), "b");
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventHeap::new();
        let t = SimTime(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventHeap::new();
        q.push(SimTime(10), 1);
        q.push(SimTime(5), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(SimTime(7), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 1);
    }

    #[test]
    fn peek_time_tracks_head() {
        let mut q = EventHeap::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::ZERO + Duration::from_millis(2), ());
        q.push(SimTime::ZERO + Duration::from_millis(1), ());
        assert_eq!(q.peek_time(), Some(SimTime(1_000_000)));
    }

    #[test]
    fn counts_total_pushed() {
        let mut q = EventHeap::new();
        q.push(SimTime(1), ());
        q.push(SimTime(2), ());
        q.pop();
        assert_eq!(q.total_pushed(), 2);
        assert_eq!(q.total_popped(), 1);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    // ---- fast-path micro-tests ----

    #[test]
    fn same_time_pushes_stay_fifo_with_heap_tail() {
        let mut q = EventHeap::new();
        q.push(SimTime(10), 0);
        q.push(SimTime(20), 1);
        assert_eq!(q.pop(), Some((SimTime(10), 0)));
        // Now cur == 10: these take the bucket.
        q.push(SimTime(10), 2);
        q.push(SimTime(10), 3);
        // A later event interleaved between same-time pushes.
        q.push(SimTime(15), 4);
        q.push(SimTime(10), 5);
        assert_eq!(q.pop(), Some((SimTime(10), 2)));
        assert_eq!(q.pop(), Some((SimTime(10), 3)));
        assert_eq!(q.pop(), Some((SimTime(10), 5)));
        assert_eq!(q.pop(), Some((SimTime(15), 4)));
        assert_eq!(q.pop(), Some((SimTime(20), 1)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_after_zero_delay_is_fifo_at_now() {
        let mut q = EventHeap::new();
        q.push(SimTime(100), "anchor");
        assert_eq!(q.pop(), Some((SimTime(100), "anchor")));
        assert_eq!(q.current_time(), SimTime(100));
        let t1 = q.push_after(Duration::ZERO, "a");
        let t2 = q.push_after(Duration::ZERO, "b");
        let t3 = q.push_after(Duration::from_nanos(5), "c");
        assert_eq!((t1, t2, t3), (SimTime(100), SimTime(100), SimTime(105)));
        assert_eq!(q.pop(), Some((SimTime(100), "a")));
        assert_eq!(q.pop(), Some((SimTime(100), "b")));
        assert_eq!(q.pop(), Some((SimTime(105), "c")));
    }

    #[test]
    fn initial_pushes_at_time_zero_are_fifo() {
        // cur starts at ZERO, so setup-time pushes at ZERO use the
        // bucket; their order must still be insertion order.
        let mut q = EventHeap::new();
        q.push(SimTime::ZERO, 0);
        q.push(SimTime(3), 1);
        q.push(SimTime::ZERO, 2);
        assert_eq!(q.pop(), Some((SimTime::ZERO, 0)));
        assert_eq!(q.pop(), Some((SimTime::ZERO, 2)));
        assert_eq!(q.pop(), Some((SimTime(3), 1)));
    }

    #[test]
    fn push_into_past_still_pops_first() {
        let mut q = EventHeap::new();
        q.push(SimTime(10), "now");
        assert_eq!(q.pop(), Some((SimTime(10), "now")));
        q.push(SimTime(10), "bucket");
        // An out-of-order push into the past must pop before the
        // same-time bucket entry.
        q.push(SimTime(4), "past");
        assert_eq!(q.pop(), Some((SimTime(4), "past")));
        assert_eq!(q.pop(), Some((SimTime(10), "bucket")));
    }

    #[test]
    fn heap_entry_with_lower_seq_beats_bucket_at_same_time() {
        let mut q = EventHeap::new();
        // seq 0 at t=10 goes to the heap (cur is ZERO).
        q.push(SimTime(10), 0);
        q.push(SimTime(10), 1);
        q.push(SimTime(5), 2);
        assert_eq!(q.pop(), Some((SimTime(5), 2)));
        // cur == 5; these go to the heap as well.
        q.push(SimTime(10), 3);
        assert_eq!(q.pop(), Some((SimTime(10), 0)));
        // cur == 10; bucket takes this one with the highest seq so far.
        q.push(SimTime(10), 4);
        // FIFO across heap and bucket at the same timestamp.
        assert_eq!(q.pop(), Some((SimTime(10), 1)));
        assert_eq!(q.pop(), Some((SimTime(10), 3)));
        assert_eq!(q.pop(), Some((SimTime(10), 4)));
    }

    /// Brute-force reference with the old `BinaryHeap` semantics:
    /// earliest `(time, seq)` first, any timestamp accepted.
    struct Model {
        v: Vec<(SimTime, u64)>,
        seq: u64,
    }

    impl Model {
        fn push(&mut self, t: SimTime) -> u64 {
            let s = self.seq;
            self.seq += 1;
            self.v.push((t, s));
            s
        }
        fn pop(&mut self) -> Option<(SimTime, u64)> {
            let i = self
                .v
                .iter()
                .enumerate()
                .min_by_key(|(_, &(t, s))| (t, s))
                .map(|(i, _)| i)?;
            Some(self.v.swap_remove(i))
        }
    }

    #[test]
    fn property_matches_binary_heap_semantics_over_10k_ops() {
        // Payloads are the model's sequence ids, so this asserts the
        // exact event identity, not just matching timestamps.
        let mut rng = crate::SimRng::new(0xDC1);
        let mut q = EventHeap::new();
        let mut m = Model {
            v: Vec::new(),
            seq: 0,
        };
        let mut cur = SimTime::ZERO;
        for _ in 0..10_000 {
            if rng.chance(0.6) || q.is_empty() {
                // Mix of future, same-time and (occasionally) past
                // timestamps relative to the last popped time.
                let t = if rng.chance(0.4) {
                    cur
                } else {
                    SimTime(cur.0.saturating_sub(2) + rng.uniform(0, 8))
                };
                let id = m.push(t);
                q.push(t, id);
            } else {
                let got = q.pop();
                let want = m.pop();
                assert_eq!(got, want);
                if let Some((t, _)) = got {
                    cur = t;
                }
            }
        }
        // Drain the rest.
        while let Some(want) = m.pop() {
            assert_eq!(q.pop(), Some(want));
        }
        assert_eq!(q.pop(), None);
        assert_eq!(q.total_pushed(), m.seq);
        assert_eq!(q.total_popped(), m.seq);
    }
}
